"""Process-parallel batch engine: differential, determinism and crash tests.

The contract under test (:mod:`repro.engine.parallel`): sharding a corpus
across worker subprocesses by CFG-skeleton digest and merging the shard
streams yields a report *field-identical* to the in-process engine, and
merged ``--profile`` counter sections — phase counters, trace/match/repair
cache counters, retrieval counters, store paging — *equal* to a
single-process run, independent of process count and ``PYTHONHASHSEED``.
A worker that dies mid-shard surfaces structured ``internal-error``
records instead of hanging the merge.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.pipeline import Clara
from repro.core.profile import PhaseProfiler
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchAttempt, BatchRepairEngine, ProcessBatchEngine
from repro.engine.cache import RepairCaches
from repro.engine.parallel import (
    CRASH_ENV,
    merge_store_paging,
    shard_key,
    shard_plan,
)

from helpers.differential import report_rows

#: A correct two-loop derivatives solution — a CFG shape the generated pool
#: never emits, giving the store a second skeleton family so multi-process
#: runs actually split work.
TWO_LOOP = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

TWO_LOOP_BROKEN = TWO_LOOP.replace("float(i*poly[i])", "float(poly[i])")

SINGLE_LOOP_BROKEN = (
    "def computeDeriv(poly):\n"
    "    result = []\n"
    "    for e in range(len(poly)):\n"
    "        result.append(float(poly[e]*e))\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

#: Non-ASCII identifiers and comments must round-trip the worker pipes.
NON_ASCII = (
    "def computeDeriv(poly):\n"
    "    # dérivée du polynôme\n"
    "    rés = []\n"
    "    for i in range(len(poly)):\n"
    "        rés.append(float(i*poly[i]))\n"
    "    if rés == []:\n"
    "        return [0.0]\n"
    "    return rés\n"
)

UNPARSEABLE = "def computeDeriv(poly:\n    return\n"


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """A derivatives store with two skeleton families, plus its test corpus."""
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 8, 0, seed=2018)
    clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
    clara.add_correct_sources(list(corpus.correct_sources) + [TWO_LOOP])
    path = clara.save_clusters(
        tmp_path_factory.mktemp("parallel") / "derivatives.json",
        problem="derivatives",
    )
    attempts = [
        BatchAttempt("single-a", SINGLE_LOOP_BROKEN),
        BatchAttempt("single-b", SINGLE_LOOP_BROKEN),  # duplicate: cache hit
        BatchAttempt("two-loop", TWO_LOOP_BROKEN),
        BatchAttempt("non-ascii", NON_ASCII),
        BatchAttempt("unparseable", UNPARSEABLE),
    ]
    return problem, path, attempts


def _single_process_run(problem, path, attempts):
    """The baseline: one in-process engine, one thread, profiler attached."""
    clara = Clara(
        cases=problem.cases,
        language=problem.language,
        entry=problem.entry,
        caches=RepairCaches(profiler=PhaseProfiler()),
    )
    engine = BatchRepairEngine.from_store(path, clara, workers=1)
    report = engine.run(attempts)
    return report, clara.counters_payload()


def _identity_sections(cache_stats, payload):
    """The sections whose merged values provably equal the single-process
    run (class-local work; see the repro.engine.parallel module docstring).
    ted/compile/cache_entries may legitimately differ: expression-level
    memos can share entries across skeleton classes in one process."""
    return {
        "phases": payload["phases"]["counters"],
        "cache": cache_stats.as_dict(),
        "retrieval": payload["retrieval"],
        "store_paging": payload["store_paging"],
    }


# -- differential: process engine vs in-process engines ------------------------------


def test_process_report_matches_sequential_and_threaded(store):
    problem, path, attempts = store
    baseline, _ = _single_process_run(problem, path, attempts)

    threaded_clara = Clara(
        cases=problem.cases, language=problem.language, entry=problem.entry
    )
    threaded = BatchRepairEngine.from_store(path, threaded_clara, workers=2).run(
        attempts
    )

    process_report = ProcessBatchEngine(path, processes=2).run(attempts)

    assert report_rows(process_report) == report_rows(baseline)
    assert report_rows(process_report) == report_rows(threaded)
    assert [r.attempt_id for r in process_report.records] == [
        a.attempt_id for a in attempts
    ]
    assert process_report.workers == 2
    # Detail strings (parse-error text etc.) also survive the pipe.
    assert [r.detail for r in process_report.records] == [
        r.detail for r in baseline.records
    ]


def test_counter_sections_identical_across_process_counts(store):
    problem, path, attempts = store
    baseline_report, baseline_payload = _single_process_run(problem, path, attempts)
    expected = _identity_sections(baseline_report.cache_stats, baseline_payload)

    for processes in (1, 2, 4):
        report = ProcessBatchEngine(path, processes=processes, profile=True).run(
            attempts
        )
        assert report.profile is not None
        merged = _identity_sections(report.cache_stats, report.profile)
        assert merged == expected, f"counter sections diverged at {processes} processes"
        # The sum-merged sections without an identity guarantee still exist
        # and carry sane totals.
        assert report.profile["solve"]["misses"] == baseline_payload["solve"]["misses"]


def test_empty_corpus_spawns_nothing(store):
    _problem, path, _attempts = store
    report = ProcessBatchEngine(path, processes=4).run([])
    assert report.records == [] and report.outcomes == []
    assert report.workers == 4


# -- shard planning ------------------------------------------------------------------


def test_shard_plan_colocates_skeleton_classes():
    items = [
        BatchAttempt("a", SINGLE_LOOP_BROKEN),
        BatchAttempt("b", TWO_LOOP_BROKEN),
        BatchAttempt("c", SINGLE_LOOP_BROKEN),  # duplicate of a's class
        BatchAttempt("d", NON_ASCII),  # same skeleton as SINGLE_LOOP_BROKEN
    ]
    shards = shard_plan(items, 2, language="python", entry=None)
    # First-appearance round-robin: class(single-loop) -> shard 0,
    # class(two-loop) -> shard 1.  NON_ASCII shares the single-loop skeleton.
    assert shards == [[0, 2, 3], [1]]


def test_shard_plan_groups_unparseable_duplicates_by_content():
    items = [
        BatchAttempt("a", UNPARSEABLE),
        BatchAttempt("b", UNPARSEABLE),
        BatchAttempt("c", "def g(:\n  pass\n"),
    ]
    key_a = shard_key(items[0].source, language="python", entry=None)
    key_c = shard_key(items[2].source, language="python", entry=None)
    assert key_a.startswith("unparsed:") and key_c.startswith("unparsed:")
    assert key_a != key_c
    shards = shard_plan(items, 2, language="python", entry=None)
    assert shards == [[0, 1], [2]]


def test_merge_store_paging_sums_loads_and_checks_totals():
    merged = merge_store_paging(
        [
            {
                "segments_total": 4,
                "segments_loaded": 1,
                "segments_skipped": 3,
                "clusters_total": 6,
                "clusters_loaded": 2,
            },
            None,  # a worker without a lazy store reports nothing
            {
                "segments_total": 4,
                "segments_loaded": 2,
                "segments_skipped": 2,
                "clusters_total": 6,
                "clusters_loaded": 3,
            },
        ]
    )
    assert merged == {
        "segments_total": 4,
        "segments_loaded": 3,
        "segments_skipped": 1,
        "clusters_total": 6,
        "clusters_loaded": 5,
    }
    assert merge_store_paging([None, None]) is None
    with pytest.raises(ValueError, match="disagree"):
        merge_store_paging(
            [
                {"segments_total": 4, "segments_loaded": 0, "clusters_total": 6,
                 "clusters_loaded": 0, "segments_skipped": 4},
                {"segments_total": 5, "segments_loaded": 0, "clusters_total": 6,
                 "clusters_loaded": 0, "segments_skipped": 5},
            ]
        )


# -- constructor validation ----------------------------------------------------------


def test_process_engine_rejects_anonymous_store(tmp_path):
    problem = get_problem("derivatives")
    clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
    clara.add_correct_sources([TWO_LOOP])
    path = clara.save_clusters(tmp_path / "anon.json")  # no problem name
    with pytest.raises(ValueError, match="names no problem"):
        ProcessBatchEngine(path, processes=2)


def test_process_engine_rejects_language_mismatch(store):
    _problem, path, _attempts = store
    with pytest.raises(ValueError, match="configured for 'c'"):
        ProcessBatchEngine(path, processes=2, language="c")


def test_process_engine_rejects_bad_process_count(store):
    _problem, path, _attempts = store
    with pytest.raises(ValueError, match="processes must be >= 1"):
        ProcessBatchEngine(path, processes=0)


# -- crash surfacing -----------------------------------------------------------------


def test_worker_crash_surfaces_internal_error_records(store, monkeypatch):
    problem, path, attempts = store
    baseline, _ = _single_process_run(problem, path, attempts)
    shards = shard_plan(attempts, 2, language=problem.language, entry=problem.entry)

    # Kill the shard-0 worker after its first record.
    monkeypatch.setenv(CRASH_ENV, "0:1")
    report = ProcessBatchEngine(path, processes=2).run(attempts)

    assert len(report.records) == len(attempts)
    survived, filled = shards[0][:1], shards[0][1:]
    # The record streamed before the crash is kept verbatim.
    for index in survived:
        assert report.records[index].status == baseline.records[index].status
    # Every unanswered attempt of the dead shard is a structured error
    # naming the shard and the exit code — the merge never hangs.
    assert filled, "crash test needs a shard with more than one attempt"
    for index in filled:
        record = report.records[index]
        assert record.status == "internal-error"
        assert "shard 0" in record.detail
        assert "code 23" in record.detail
    # The healthy shard is untouched.
    for index in shards[1]:
        assert report.records[index].status == baseline.records[index].status


# -- PYTHONHASHSEED independence -----------------------------------------------------

_DETERMINISM_SCRIPT = r"""
import json, sys
from repro.core.pipeline import Clara
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchAttempt, ProcessBatchEngine

two_loop = @TWO_LOOP@
attempts = [
    BatchAttempt("s", @SINGLE@),
    BatchAttempt("t", two_loop.replace("float(i*poly[i])", "float(poly[i])")),
]
problem = get_problem("derivatives")
corpus = generate_corpus(problem, 6, 0, seed=2018)
clara = Clara(cases=problem.cases, language=problem.language, entry=problem.entry)
clara.add_correct_sources(list(corpus.correct_sources) + [two_loop])
path = clara.save_clusters(sys.argv[1] + "/store.json", problem="derivatives")
report = ProcessBatchEngine(path, processes=2, profile=True).run(attempts)
rows = [
    [r.attempt_id, r.status, r.cost, r.relative_size, r.num_modified, r.feedback]
    for r in report.records
]
sections = {
    "phases": report.profile["phases"]["counters"],
    "cache": report.cache_stats.as_dict(),
    "retrieval": report.profile["retrieval"],
    "store_paging": report.profile["store_paging"],
}
print(json.dumps({"rows": rows, "sections": sections}, sort_keys=True))
"""


def test_merged_counters_are_hashseed_independent(tmp_path):
    script = _DETERMINISM_SCRIPT.replace("@TWO_LOOP@", repr(TWO_LOOP)).replace(
        "@SINGLE@", repr(SINGLE_LOOP_BROKEN)
    )
    outputs = []
    for seed in ("0", "101"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        work = tmp_path / f"seed-{seed}"
        work.mkdir()
        result = subprocess.run(
            [sys.executable, "-c", script, str(work)],
            capture_output=True,
            text=True,
            encoding="utf-8",
            env=env,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        outputs.append(result.stdout.strip().splitlines()[-1])
    assert outputs[0] == outputs[1], "merged output varies with PYTHONHASHSEED"
