"""Incremental cluster-store updates (``ClusterStore.add_correct_source``).

The contract under test: adding a correct submission to a persisted store
produces a store *field-identical* to rebuilding from scratch with that
submission appended to the original pool — same clusters, pools,
provenance and repair outcomes — while only the revision counter differs.
"""

from __future__ import annotations

import json

import pytest

from repro import Clara
from repro.cli import main as cli_main
from repro.clusterstore import (
    FORMAT_VERSION,
    ClusterStore,
    read_store_header,
)
from repro.clusterstore.segments import segment_dir
from repro.datasets import generate_corpus, get_problem

#: A correct strategy deliberately absent from the tiny hand-picked pools
#: below: loop over the *full* index range with the real work behind a
#: branch.  Visits different locations on every input, so it can never
#: match a loop-from-1 cluster.
BRANCHY = (
    "def computeDeriv(poly):\n"
    "    result = []\n"
    "    for i in range(len(poly)):\n"
    "        if i > 0:\n"
    "            result.append(float(poly[i]*i))\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)


@pytest.fixture(scope="module")
def spec():
    return get_problem("derivatives")


@pytest.fixture(scope="module")
def corpus(spec):
    return generate_corpus(spec, 10, 4, seed=3)


def _build_store(path, spec, sources, problem="derivatives"):
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.add_correct_sources(sources)
    clara.save_clusters(path, problem=problem)
    return clara


def _outcome_fields(clara, sources):
    rows = []
    for source in sources:
        outcome = clara.repair_source(source)
        rows.append(
            (
                outcome.status,
                outcome.repair.cost if outcome.repair else None,
                outcome.repair.relative_size() if outcome.repair else None,
                outcome.repair.num_modified_expressions if outcome.repair else None,
                [item.message for item in outcome.feedback.items]
                if outcome.feedback
                else None,
            )
        )
    return rows


def _load_fresh(spec, path):
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.load_clusters(path)
    return clara


def _store_state(path):
    """Full on-disk state of a v3 store: header fields + segment bytes."""
    header = json.loads(path.read_text())
    segments = {
        entry.name: entry.read_bytes() for entry in sorted(segment_dir(path).iterdir())
    }
    return header, segments


def test_incremental_add_identical_to_full_rebuild(tmp_path, spec, corpus):
    """Join case: the updated store is byte-identical to a rebuild (modulo
    revision) and repairs every incorrect attempt field-identically."""
    base, extra = corpus.correct_sources[:-1], corpus.correct_sources[-1]
    inc_path, full_path = tmp_path / "inc.json", tmp_path / "full.json"
    _build_store(inc_path, spec, base)

    store = ClusterStore.open(inc_path, spec.cases)
    outcome = store.add_correct_source(extra)
    assert outcome.accepted
    assert outcome.revision == 1
    store.save()

    _build_store(full_path, spec, list(base) + [extra])

    inc_doc, inc_segments = _store_state(inc_path)
    full_doc, full_segments = _store_state(full_path)
    assert inc_doc.pop("revision") == 1
    assert full_doc.pop("revision") == 0
    assert inc_doc == full_doc
    assert inc_segments == full_segments

    incremental = _load_fresh(spec, inc_path)
    rebuilt = _load_fresh(spec, full_path)
    assert _outcome_fields(incremental, corpus.incorrect_sources) == _outcome_fields(
        rebuilt, corpus.incorrect_sources
    )


def test_incremental_add_mints_new_cluster(tmp_path, spec, paper_sources):
    """Create case: a strategy absent from the pool becomes a new cluster
    with the next id — exactly where a rebuild would put it."""
    base = [paper_sources["C1"], paper_sources["C2"]]
    inc_path, full_path = tmp_path / "inc.json", tmp_path / "full.json"
    built = _build_store(inc_path, spec, base)

    store = ClusterStore.open(inc_path, spec.cases)
    outcome = store.add_correct_source(BRANCHY)
    assert outcome.status == "created"
    assert outcome.cluster_id == built.cluster_count
    store.save()

    _build_store(full_path, spec, base + [BRANCHY])
    inc_doc, inc_segments = _store_state(inc_path)
    full_doc, full_segments = _store_state(full_path)
    inc_doc.pop("revision"), full_doc.pop("revision")
    assert inc_doc == full_doc
    assert inc_segments == full_segments


def test_rejections_leave_store_and_revision_untouched(tmp_path, spec, corpus):
    inc_path = tmp_path / "store.json"
    _build_store(inc_path, spec, corpus.correct_sources[:4])
    store = ClusterStore.open(inc_path, spec.cases)
    before = _store_state(inc_path)

    unparseable = store.add_correct_source("def (\n")
    assert unparseable.status == "rejected-parse"
    incorrect = store.add_correct_source(corpus.incorrect_sources[0])
    assert incorrect.status in ("rejected-incorrect", "rejected-execution")
    assert store.revision == 0
    store.save()
    # A save after only rejected adds rewrites the identical header/segments.
    assert _store_state(inc_path) == before


def test_revision_is_monotonic_and_survives_round_trips(tmp_path, spec, corpus):
    inc_path = tmp_path / "store.json"
    _build_store(inc_path, spec, corpus.correct_sources[:6])
    assert read_store_header(inc_path).revision == 0

    store = ClusterStore.open(inc_path, spec.cases)
    revisions = [
        store.add_correct_source(source).revision
        for source in corpus.correct_sources[6:]
    ]
    assert revisions == sorted(revisions)
    assert store.revision == revisions[-1]
    store.save()

    assert read_store_header(inc_path).revision == store.revision
    # Re-opening resumes the counter rather than resetting it.
    reopened = ClusterStore.open(inc_path, spec.cases)
    assert reopened.revision == store.revision


def test_cluster_info_reports_revision_and_index_stats(tmp_path, spec, corpus, capsys):
    store_path = tmp_path / "store.json"
    _build_store(store_path, spec, corpus.correct_sources[:6])
    store = ClusterStore.open(store_path, spec.cases)
    store.add_correct_source(corpus.correct_sources[6])
    store.save()

    assert cli_main(["cluster", "info", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert f"format version: {FORMAT_VERSION}\n" in out
    assert "revision:       1" in out
    assert "segments:" in out
    assert "  seg-" in out
    assert "skeleton=" in out


def test_cluster_info_identifies_stale_store_without_error(tmp_path, capsys):
    """A version-1 store must be identified (version, revision, problem) —
    not bounced through the strict loader's rebuild-hint error path."""
    old = tmp_path / "old.json"
    old.write_text(
        json.dumps(
            {
                "format": "repro-clara-clusterstore",
                "format_version": 1,
                "problem": "derivatives",
                "language": "python",
                "case_signature": "0" * 64,
                "cluster_count": 3,
                "total_members": 7,
                "clusters": [],
            }
        )
        + "\n"
    )
    assert cli_main(["cluster", "info", str(old)]) == 0
    captured = capsys.readouterr()
    assert "format version: 1 (stale" in captured.out
    assert "rebuild" in captured.out
    assert captured.err == ""


def test_cluster_info_rejects_non_store_files(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}\n")
    assert cli_main(["cluster", "info", str(bogus)]) == 2
    assert "not a cluster store" in capsys.readouterr().err
