"""Tests for the Python front-end (source → program model)."""

from __future__ import annotations

import pytest

from repro.frontend import ParseError, UnsupportedFeatureError, parse_python_source
from repro.interpreter import execute, printed_output, returned_value
from repro.model.expr import VAR_COND, VAR_RET


def _run(source: str, **inputs):
    program = parse_python_source(source)
    return execute(program, inputs)


# -- basics -----------------------------------------------------------------------


def test_straight_line_function():
    trace = _run("def f(x):\n    y = x + 1\n    return y * 2\n", x=5)
    assert returned_value(trace) == 12


def test_sequential_assignments_compose():
    source = """
def f(x):
    a = x + 1
    b = a * 2
    a = b - x
    return a + b
"""
    trace = _run(source, x=3)
    a = 3 + 1
    b = a * 2
    a = b - 3
    assert returned_value(trace) == a + b


def test_loopfree_if_becomes_ite():
    source = """
def f(x):
    if x > 0:
        y = 1
    else:
        y = -1
    return y
"""
    program = parse_python_source(source)
    # single location: the if was folded into an ite expression
    assert len(program.locations) == 1
    assert returned_value(execute(program, {"x": 5})) == 1
    assert returned_value(execute(program, {"x": -5})) == -1


def test_elif_chain():
    source = """
def sign(x):
    if x > 0:
        return 1
    elif x < 0:
        return -1
    else:
        return 0
"""
    for value, expected in ((3, 1), (-2, -1), (0, 0)):
        assert returned_value(_run(source, x=value)) == expected


def test_early_return_guards_later_statements():
    source = """
def f(x):
    if x < 0:
        return 0
    x = x * 10
    return x
"""
    assert returned_value(_run(source, x=-3)) == 0
    assert returned_value(_run(source, x=3)) == 30


def test_for_loop_over_range_structure():
    source = """
def total(n):
    s = 0
    for i in range(n):
        s += i
    return s
"""
    program = parse_python_source(source)
    assert len(program.locations) == 4  # entry, cond, body, after
    assert program.is_branching(program.location_ids()[1])
    assert returned_value(execute(program, {"n": 5})) == 10


def test_for_loop_over_list_and_tuple_target():
    source = """
def pairs(items):
    s = 0
    for i, v in enumerate(items):
        s += i * v
    return s
"""
    assert returned_value(_run(source, items=[2, 3, 4])) == 0 * 2 + 1 * 3 + 2 * 4


def test_while_loop():
    source = """
def countdown(n):
    steps = 0
    while n > 0:
        n = n - 1
        steps += 1
    return steps
"""
    assert returned_value(_run(source, n=7)) == 7


def test_return_inside_loop_exits():
    source = """
def find(items, target):
    for i in range(len(items)):
        if items[i] == target:
            return i
    return -1
"""
    assert returned_value(_run(source, items=[5, 6, 7], target=6)) == 1
    assert returned_value(_run(source, items=[5, 6, 7], target=9)) == -1


def test_break_and_continue():
    source = """
def count_until_negative(items):
    count = 0
    for x in items:
        if x < 0:
            break
        if x == 0:
            continue
        count += 1
    return count
"""
    assert returned_value(_run(source, items=[1, 0, 2, -1, 5])) == 2
    assert returned_value(_run(source, items=[1, 2, 3])) == 3


def test_nested_loops():
    source = """
def table(n):
    total = 0
    for i in range(n):
        for j in range(n):
            total += i * j
    return total
"""
    expected = sum(i * j for i in range(4) for j in range(4))
    assert returned_value(_run(source, n=4)) == expected


def test_subscript_assignment_and_augassign():
    source = """
def bump(values, i):
    values[i] = values[i] + 1
    values[0] += 10
    return values
"""
    assert returned_value(_run(source, values=[1, 2, 3], i=2)) == [11, 2, 4]


def test_list_methods_append_extend():
    source = """
def build(n):
    out = []
    out.append(n)
    out.extend([n + 1, n + 2])
    return out
"""
    assert returned_value(_run(source, n=5)) == [5, 6, 7]


def test_print_goes_to_out_variable():
    source = """
def shout(x):
    print(x, x + 1)
    print("done")
"""
    trace = _run(source, x=1)
    assert printed_output(trace) == "1 2\ndone\n"


def test_if_with_loop_inside_becomes_control_flow():
    source = """
def f(items, flag):
    total = 0
    if flag:
        for x in items:
            total += x
    else:
        total = -1
    return total
"""
    program = parse_python_source(source)
    assert len(program.locations) > 4
    assert returned_value(execute(program, {"items": [1, 2, 3], "flag": True})) == 6
    assert returned_value(execute(program, {"items": [1, 2, 3], "flag": False})) == -1


def test_slice_and_step_slice():
    source = """
def halves(items):
    return (items[:2], items[::2])
"""
    assert returned_value(_run(source, items=[1, 2, 3, 4, 5])) == ([1, 2], [1, 3, 5])


def test_chained_comparison():
    source = """
def inside(x):
    return 0 <= x < 10
"""
    assert returned_value(_run(source, x=5)) is True
    assert returned_value(_run(source, x=20)) is False


def test_tuple_unpacking_assignment():
    source = """
def swap(a, b):
    a, b = b, a
    return (a, b)
"""
    assert returned_value(_run(source, a=1, b=2)) == (2, 1)


def test_unknown_function_call_yields_undefined_behaviour_not_crash():
    source = """
def f(x):
    return helper(x) + 1
"""
    trace = _run(source, x=3)
    from repro.interpreter.values import is_undef

    assert is_undef(returned_value(trace))


# -- special variables / model shape ------------------------------------------------


def test_loop_condition_uses_cond_variable():
    source = """
def f(n):
    s = 0
    for i in range(1, n):
        s += i
    return s
"""
    program = parse_python_source(source)
    cond_loc = program.location_ids()[1]
    assert VAR_COND in program.locations[cond_loc].updates
    after_loc = program.location_ids()[3]
    assert VAR_RET in program.locations[after_loc].updates


def test_unused_retflag_is_pruned(paper_sources):
    program = parse_python_source(paper_sources["C1"])
    assert "$retflag" not in program.variables


# -- errors ----------------------------------------------------------------------


def test_parse_error_on_invalid_syntax():
    with pytest.raises(ParseError):
        parse_python_source("def f(:\n  pass")


def test_parse_error_when_no_function():
    with pytest.raises(ParseError):
        parse_python_source("x = 1\n")


def test_entry_selection():
    source = "def a():\n    return 1\n\ndef b():\n    return 2\n"
    assert returned_value(execute(parse_python_source(source, entry="b"), {})) == 2
    with pytest.raises(ParseError):
        parse_python_source(source, entry="zzz")


@pytest.mark.parametrize(
    "snippet",
    [
        "def f(xs):\n    return [x for x in xs]\n",
        "def f(x):\n    g = lambda y: y\n    return g(x)\n",
        "def f(x):\n    d = {1: 2}\n    return d\n",
        "def f(*args):\n    return args\n",
        "def f(x):\n    def g():\n        return 1\n    return g()\n",
        "def f(x):\n    global y\n    return x\n",
    ],
)
def test_unsupported_features_raise(snippet):
    with pytest.raises(UnsupportedFeatureError):
        parse_python_source(snippet)


# -- the paper's running example ----------------------------------------------------


def test_paper_examples_behaviour(paper_sources):
    c1 = parse_python_source(paper_sources["C1"])
    assert returned_value(execute(c1, {"poly": [6.3, 7.6, 12.14]})) == [7.6, 24.28]
    assert returned_value(execute(c1, {"poly": []})) == [0.0]
    i1 = parse_python_source(paper_sources["I1"])
    assert returned_value(execute(i1, {"poly": []})) == 0.0  # the bug: scalar not list
