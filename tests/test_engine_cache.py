"""Tests for the engine layer: caches, batch engine, and their equivalence
with the sequential pipeline."""

from __future__ import annotations

from repro import Clara, InputCase, parse_source
from repro.engine import BatchAttempt, BatchRepairEngine, RepairCaches
from repro.engine.cache import case_set_key, freeze_key


# -- structure keys ------------------------------------------------------------------


def test_structure_key_identical_for_identical_sources(paper_sources):
    p1 = parse_source(paper_sources["C1"])
    p2 = parse_source(paper_sources["C1"])
    assert p1 is not p2
    assert p1.structure_key() == p2.structure_key()
    assert hash(p1.structure_key()) == hash(p2.structure_key())


def test_structure_key_differs_for_different_programs(paper_sources):
    p1 = parse_source(paper_sources["C1"])
    p2 = parse_source(paper_sources["C2"])
    assert p1.structure_key() != p2.structure_key()


def test_freeze_key_handles_nested_containers():
    frozen = freeze_key([1, [2, 3], {"b": 2, "a": [1]}, {4, 5}])
    assert hash(frozen) == hash(freeze_key((1, (2, 3), {"a": (1,), "b": 2}, {5, 4})))


# -- trace/correctness cache ----------------------------------------------------------


def test_program_key_memo_does_not_pin_programs(paper_sources):
    import gc
    import weakref

    caches = RepairCaches()
    program = parse_source(paper_sources["C1"])
    caches.program_key(program)
    assert len(caches._program_keys) == 1
    ref = weakref.ref(program)
    del program
    gc.collect()
    assert ref() is None
    assert len(caches._program_keys) == 0


def test_identical_programs_hit_trace_cache(deriv_cases, paper_sources):
    caches = RepairCaches()
    first = parse_source(paper_sources["C1"])
    duplicate = parse_source(paper_sources["C1"])

    assert caches.is_correct(first, deriv_cases) is True
    misses_after_first = caches.stats.trace_misses
    assert misses_after_first >= 1

    assert caches.is_correct(duplicate, deriv_cases) is True
    assert caches.stats.trace_misses == misses_after_first
    assert caches.stats.trace_hits >= 1


def test_trace_cache_invalidates_when_cases_differ(deriv_cases, paper_sources):
    caches = RepairCaches()
    program = parse_source(paper_sources["C1"])
    assert caches.is_correct(program, deriv_cases) is True

    # A case set demanding a wrong answer must not reuse the old verdict.
    wrong_cases = [
        InputCase(args=([1.0, 2.0],), expected_return=[999.0]),
    ]
    misses_before = caches.stats.trace_misses
    assert caches.is_correct(program, wrong_cases) is False
    assert caches.stats.trace_misses > misses_before

    # Case-set keys distinguish both membership and order.
    assert case_set_key(deriv_cases) != case_set_key(wrong_cases)
    assert case_set_key(deriv_cases) != case_set_key(list(reversed(deriv_cases)))
    # And the original verdict is still served from cache.
    hits_before = caches.stats.trace_hits
    assert caches.is_correct(program, deriv_cases) is True
    assert caches.stats.trace_hits > hits_before


def test_disabled_caches_always_recompute(deriv_cases, paper_sources):
    caches = RepairCaches(enabled=False)
    program = parse_source(paper_sources["C1"])
    assert caches.is_correct(program, deriv_cases) is True
    assert caches.is_correct(program, deriv_cases) is True
    assert caches.stats.trace_hits == 0
    assert caches.stats.trace_misses == 2
    assert caches.entry_counts() == {
        "traces": 0,
        "correct": 0,
        "matches": 0,
        "fingerprints": 0,
        "repairs": 0,
        "ted_annotations": 0,
        "ted_distances": 0,
        "compiled_exprs": 0,
        "solves": 0,
    }


# -- structural-match cache -----------------------------------------------------------


def test_gate_and_search_share_one_match_per_pair(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    program = clara.parse(paper_sources["I1"])

    outcome = clara.repair_program(program)
    assert outcome.succeeded
    stats = clara.caches.stats
    # One structural match computed per (attempt, representative) pair; the
    # pipeline gate and find_best_repair both consult it, so the search's
    # queries are all hits.
    assert stats.match_misses == clara.cluster_count
    assert stats.match_hits >= clara.cluster_count

    # Repairing an identical parse again recomputes nothing.
    misses_before = stats.match_misses
    duplicate = clara.parse(paper_sources["I1"])
    again = clara.repair_program(duplicate)
    assert again.status == outcome.status
    assert stats.match_misses == misses_before
    assert stats.repair_hits >= 1


# -- batch engine ---------------------------------------------------------------------


def _sequential_outcomes(cases, correct, attempts):
    clara = Clara(cases)
    clara.add_correct_sources(correct)
    return [clara.repair_source(source) for source in attempts]


def test_batch_results_identical_to_sequential(deriv_cases, paper_sources):
    correct = [paper_sources["C1"], paper_sources["C2"]]
    attempts = [
        paper_sources["I1"],
        paper_sources["I2"],
        paper_sources["I1"],  # duplicate resubmission
        paper_sources["C1"],  # already correct
        "def computeDeriv(poly:",  # parse error
    ]
    sequential = _sequential_outcomes(deriv_cases, correct, attempts)

    batched = Clara(deriv_cases)
    batched.add_correct_sources(correct)
    report = BatchRepairEngine(batched, workers=4).run(attempts)

    assert [o.status for o in sequential] == [r.status for r in report.records]
    for seq, record in zip(sequential, report.records):
        if seq.repair is None:
            assert record.cost is None
        else:
            assert record.cost == seq.repair.cost
            assert record.num_modified == seq.repair.num_modified_expressions
        seq_feedback = (
            [item.message for item in seq.feedback.items] if seq.feedback else []
        )
        assert record.feedback == seq_feedback
    # The duplicate of I1 must have been served from the repair memo.
    assert report.cache_stats.repair_hits >= 1
    assert report.cache_stats.trace_hits >= 1


def test_batch_single_flight_dedupes_concurrent_duplicates(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    report = BatchRepairEngine(clara, workers=4).run([paper_sources["I1"]] * 8)

    statuses = {record.status for record in report.records}
    assert statuses == {"repaired"}
    # Exactly one ILP solve; the other seven attempts reuse it (possibly
    # after waiting on the in-flight computation).
    assert report.cache_stats.repair_misses == 1
    assert report.cache_stats.repair_hits == 7


def test_batch_preserves_submission_order_and_ids(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    attempts = [
        BatchAttempt("zz-last", paper_sources["I1"]),
        BatchAttempt("aa-first", paper_sources["I2"]),
    ]
    report = BatchRepairEngine(clara, workers=2).run(attempts)
    assert [record.attempt_id for record in report.records] == ["zz-last", "aa-first"]


def test_batch_report_serialises_to_jsonl(tmp_path, deriv_cases, paper_sources):
    import json

    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"]])
    report = BatchRepairEngine(clara, workers=1).run([paper_sources["I1"]])
    path = report.write_jsonl(tmp_path / "report.jsonl")

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 2
    assert lines[0]["attempt_id"] == "attempt-0"
    assert lines[0]["status"] in ("repaired", "no-repair", "no-structural-match")
    summary = lines[1]["summary"]
    assert summary["attempts"] == 1
    assert set(summary["cache"]) >= {"trace_hit_rate", "match_hit_rate", "repair_hit_rate"}


def test_repair_source_is_batch_size_one(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    outcome = clara.repair_source(paper_sources["I1"])
    assert outcome.succeeded
    # Parse time is included in the per-attempt elapsed measurement.
    assert outcome.elapsed > 0


def test_memo_respects_source_positions(deriv_cases, paper_sources):
    """Structurally identical code at shifted line numbers must not share
    memoized feedback (the feedback cites line numbers)."""
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    original = clara.repair_source(paper_sources["I1"])
    shifted = clara.repair_source("\n\n\n" + paper_sources["I1"])
    assert original.succeeded and shifted.succeeded
    original_lines = [item.line for item in original.feedback.items]
    shifted_lines = [item.line for item in shifted.feedback.items]
    assert shifted_lines == [line + 3 for line in original_lines]
    # The structural trace cache still dedupes the executions.
    assert clara.caches.stats.trace_hits >= 1


def test_shared_caches_do_not_leak_across_pipelines(deriv_cases, paper_sources):
    from repro.engine import RepairCaches

    caches = RepairCaches()
    first = Clara(deriv_cases, caches=caches)
    first.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    second = Clara(deriv_cases, caches=caches)
    second.add_correct_sources([paper_sources["C2"]])

    outcome_first = first.repair_source(paper_sources["I1"])
    outcome_second = second.repair_source(paper_sources["I1"])
    assert outcome_first.succeeded and outcome_second.succeeded
    # Identical attempt, but different pipelines (different cluster pools):
    # each must compute its own outcome rather than reuse the other's.
    assert caches.stats.repair_misses == 2
    assert caches.stats.repair_hits == 0


def test_timeout_outcomes_are_not_memoized(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    timed_out = clara.repair_source(paper_sources["I1"], budget=0.0)
    assert timed_out.status == "timeout"
    assert clara.caches.entry_counts()["repairs"] == 0
    # The same attempt without the zero budget still repairs fine.
    retried = clara.repair_source(paper_sources["I1"])
    assert retried.succeeded


def test_batch_budget_produces_timeout_status(deriv_cases, paper_sources):
    clara = Clara(deriv_cases)
    clara.add_correct_sources([paper_sources["C1"], paper_sources["C2"]])
    report = BatchRepairEngine(clara, workers=1, budget=0.0).run(
        [paper_sources["I1"]]
    )
    assert report.records[0].status == "timeout"
