"""Tests for the Zhang–Shasha tree edit distance substrate."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.model.expr import Const, Op, Var
from repro.ted import (
    AnnotatedTree,
    TedCache,
    TreeNode,
    expr_edit_distance,
    expr_to_tree,
    ted_lower_bound,
    tree_edit_distance,
    tree_size,
)


def _t(label: str, *children: TreeNode) -> TreeNode:
    node = TreeNode(label)
    for child in children:
        node.add(child)
    return node


def test_identical_trees_distance_zero():
    tree = _t("a", _t("b"), _t("c", _t("d")))
    assert tree_edit_distance(tree, tree) == 0


def test_single_relabel():
    assert tree_edit_distance(_t("a", _t("b")), _t("a", _t("x"))) == 1


def test_insert_and_delete():
    small = _t("a", _t("b"))
    large = _t("a", _t("b"), _t("c"))
    assert tree_edit_distance(small, large) == 1
    assert tree_edit_distance(large, small) == 1


def test_classic_zhang_shasha_example():
    # The well-known f(d(a, c(b)), e) vs f(c(d(a, b)), e) example: distance 2.
    t1 = _t("f", _t("d", _t("a"), _t("c", _t("b"))), _t("e"))
    t2 = _t("f", _t("c", _t("d", _t("a"), _t("b"))), _t("e"))
    assert tree_edit_distance(t1, t2) == 2


def test_completely_different_trees():
    t1 = _t("a")
    t2 = _t("x", _t("y"), _t("z"))
    assert tree_edit_distance(t1, t2) == 3


def test_expr_edit_distance_on_paper_repair():
    # Fig. 2(g): change 0.0 to [0.0] in the return expression.
    old = Op("ite", Op("Eq", Var("new"), Const([])), Const(0.0), Var("new"))
    new = Op("ite", Op("Eq", Var("new"), Const([])), Const([0.0]), Var("new"))
    assert expr_edit_distance(old, new) == 1
    assert expr_edit_distance(old, old) == 0


def test_expr_to_tree_labels():
    tree = expr_to_tree(Op("Add", Var("x"), Const(1)))
    assert tree.label == "op:Add"
    assert [child.label for child in tree.children] == ["var:x", "const:1"]
    assert tree_size(tree) == 3


# -- properties ---------------------------------------------------------------------


def _tree_strategy():
    return st.recursive(
        st.sampled_from("abcde").map(TreeNode),
        lambda children: st.tuples(
            st.sampled_from("abcde"), st.lists(children, min_size=1, max_size=3)
        ).map(lambda t: TreeNode(t[0], list(t[1]))),
        max_leaves=6,
    )


@given(_tree_strategy(), _tree_strategy())
def test_distance_symmetric_with_unit_costs(t1, t2):
    assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)


@given(_tree_strategy(), _tree_strategy())
def test_distance_bounds(t1, t2):
    distance = tree_edit_distance(t1, t2)
    assert 0 <= distance <= tree_size(t1) + tree_size(t2)
    assert distance >= abs(tree_size(t1) - tree_size(t2))


@given(_tree_strategy())
def test_distance_identity(tree):
    assert tree_edit_distance(tree, tree) == 0


# -- the fast path: annotations, memoization, lower bound, budgets --------------------


def _random_expr(rng, depth: int = 3):
    """Small random expression over a fixed vocabulary (deterministic per rng)."""
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return Var(rng.choice("abcxyz"))
        return Const(rng.choice([0, 1, 2, 2.5, True, None, "s", []]))
    name = rng.choice(["Add", "Sub", "Mult", "Eq", "f", "g"])
    return Op(
        name, *(_random_expr(rng, depth - 1) for _ in range(rng.randint(1, 3)))
    )


def _fresh_distance(expr1, expr2) -> int:
    """The from-scratch Zhang–Shasha DP, bypassing every cache."""
    return tree_edit_distance(expr_to_tree(expr1), expr_to_tree(expr2))


def test_memoized_distance_equals_fresh_dp_on_random_corpus():
    """Property (seeded, deterministic): the memoized/pruned fast path agrees
    with the from-scratch DP on every random expression pair."""
    rng = random.Random(20180618)
    cache = TedCache()
    pairs = [(_random_expr(rng), _random_expr(rng)) for _ in range(120)]
    for expr1, expr2 in pairs:
        expected = _fresh_distance(expr1, expr2)
        assert expr_edit_distance(expr1, expr2, cache=cache) == expected
        # Second lookup must hit the memo and still agree (both orders).
        assert expr_edit_distance(expr1, expr2, cache=cache) == expected
        assert expr_edit_distance(expr2, expr1, cache=cache) == expected
    assert cache.memo_hits > 0
    assert cache.dp_runs <= len(pairs)


def test_budgeted_distance_is_exact_below_budget_and_bounding_above():
    """With a budget, results below it are exact and results at/above it are
    valid lower bounds (never above the true distance's admissible range)."""
    rng = random.Random(77)
    for _ in range(150):
        expr1, expr2 = _random_expr(rng), _random_expr(rng)
        true_distance = _fresh_distance(expr1, expr2)
        budget = rng.randint(0, 8) + 0.5
        result = expr_edit_distance(expr1, expr2, cache=TedCache(), budget=budget)
        if result < budget:
            assert result == true_distance
        else:
            assert true_distance >= budget
            assert result <= true_distance  # a lower bound, usable as such


def test_lower_bound_never_exceeds_distance():
    rng = random.Random(5)
    for _ in range(100):
        expr1, expr2 = _random_expr(rng), _random_expr(rng)
        a = AnnotatedTree.from_expr(expr1)
        b = AnnotatedTree.from_expr(expr2)
        assert ted_lower_bound(a, b) <= _fresh_distance(expr1, expr2)


def test_annotation_rename_matches_rebuilt_annotation():
    """Deriving a renamed expression's annotation by label substitution must
    equal rebuilding it from the renamed expression (shape is rename-invariant)."""
    rng = random.Random(13)
    mapping = {"a": "p", "b": "q", "x": "a", "y": "zz"}
    for _ in range(80):
        expr = _random_expr(rng)
        base = AnnotatedTree.from_expr(expr)
        derived = base.rename_vars(mapping)
        rebuilt = AnnotatedTree.from_expr(expr.rename_vars(mapping))
        assert derived == rebuilt
        # The shape arrays are shared, not copied.
        assert derived.lmld is base.lmld
        assert derived.keyroots is base.keyroots


def test_disabled_cache_counts_every_dp():
    cache = TedCache(enabled=False)
    a = Op("Add", Var("x"), Const(1))
    b = Op("Add", Var("x"), Const(2))
    assert expr_edit_distance(a, b, cache=cache) == 1
    assert expr_edit_distance(a, b, cache=cache) == 1
    assert cache.dp_runs == 2
    assert cache.memo_hits == 0
    assert cache.entry_counts() == {"ted_annotations": 0, "ted_distances": 0}


def test_seeded_annotation_is_used():
    cache = TedCache()
    expr = Op("Add", Var("x"), Const(1))
    seeded = AnnotatedTree.from_expr(expr)
    cache.seed_annotation(expr, seeded)
    assert cache.annotation(expr) is seeded


def test_cache_tables_are_bounded():
    """The memo tables flush at max_entries instead of growing forever."""
    rng = random.Random(9)
    cache = TedCache(max_entries=4)
    for _ in range(60):
        expr_edit_distance(_random_expr(rng), _random_expr(rng), cache=cache)
    counts = cache.entry_counts()
    assert counts["ted_annotations"] <= 4
    assert counts["ted_distances"] <= 5  # both orders land after a flush check
