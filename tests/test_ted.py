"""Tests for the Zhang–Shasha tree edit distance substrate."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.model.expr import Const, Op, Var
from repro.ted import TreeNode, expr_edit_distance, expr_to_tree, tree_edit_distance, tree_size


def _t(label: str, *children: TreeNode) -> TreeNode:
    node = TreeNode(label)
    for child in children:
        node.add(child)
    return node


def test_identical_trees_distance_zero():
    tree = _t("a", _t("b"), _t("c", _t("d")))
    assert tree_edit_distance(tree, tree) == 0


def test_single_relabel():
    assert tree_edit_distance(_t("a", _t("b")), _t("a", _t("x"))) == 1


def test_insert_and_delete():
    small = _t("a", _t("b"))
    large = _t("a", _t("b"), _t("c"))
    assert tree_edit_distance(small, large) == 1
    assert tree_edit_distance(large, small) == 1


def test_classic_zhang_shasha_example():
    # The well-known f(d(a, c(b)), e) vs f(c(d(a, b)), e) example: distance 2.
    t1 = _t("f", _t("d", _t("a"), _t("c", _t("b"))), _t("e"))
    t2 = _t("f", _t("c", _t("d", _t("a"), _t("b"))), _t("e"))
    assert tree_edit_distance(t1, t2) == 2


def test_completely_different_trees():
    t1 = _t("a")
    t2 = _t("x", _t("y"), _t("z"))
    assert tree_edit_distance(t1, t2) == 3


def test_expr_edit_distance_on_paper_repair():
    # Fig. 2(g): change 0.0 to [0.0] in the return expression.
    old = Op("ite", Op("Eq", Var("new"), Const([])), Const(0.0), Var("new"))
    new = Op("ite", Op("Eq", Var("new"), Const([])), Const([0.0]), Var("new"))
    assert expr_edit_distance(old, new) == 1
    assert expr_edit_distance(old, old) == 0


def test_expr_to_tree_labels():
    tree = expr_to_tree(Op("Add", Var("x"), Const(1)))
    assert tree.label == "op:Add"
    assert [child.label for child in tree.children] == ["var:x", "const:1"]
    assert tree_size(tree) == 3


# -- properties ---------------------------------------------------------------------


def _tree_strategy():
    return st.recursive(
        st.sampled_from("abcde").map(TreeNode),
        lambda children: st.tuples(
            st.sampled_from("abcde"), st.lists(children, min_size=1, max_size=3)
        ).map(lambda t: TreeNode(t[0], list(t[1]))),
        max_leaves=6,
    )


@given(_tree_strategy(), _tree_strategy())
def test_distance_symmetric_with_unit_costs(t1, t2):
    assert tree_edit_distance(t1, t2) == tree_edit_distance(t2, t1)


@given(_tree_strategy(), _tree_strategy())
def test_distance_bounds(t1, t2):
    distance = tree_edit_distance(t1, t2)
    assert 0 <= distance <= tree_size(t1) + tree_size(t2)
    assert distance >= abs(tree_size(t1) - tree_size(t2))


@given(_tree_strategy())
def test_distance_identity(tree):
    assert tree_edit_distance(tree, tree) == 0
