"""The repair service: protocol failure modes, deadlines, warm caches and
hot reload.

TCP tests run a real :class:`~repro.service.server.RepairServer` on an
ephemeral port in a background thread and talk to it through the blocking
:class:`~repro.service.client.ServiceClient`; service-only tests drive
:meth:`RepairService.handle_line` directly.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import shutil
import threading
import time

import pytest

from repro import Clara
from repro.cli import main as cli_main
from repro.clusterstore import ClusterStore
from repro.clusterstore.segments import segment_dir
from repro.datasets import generate_corpus, get_problem
from repro.service import RepairServer, RepairService, ServiceClient

PROBLEM = "derivatives"


@pytest.fixture(scope="module")
def spec():
    return get_problem(PROBLEM)


@pytest.fixture(scope="module")
def corpus(spec):
    return generate_corpus(spec, 8, 3, seed=7)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, spec, corpus):
    path = tmp_path_factory.mktemp("service") / "derivatives.json"
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.add_correct_sources(corpus.correct_sources)
    clara.save_clusters(path, problem=PROBLEM)
    return path


@contextlib.contextmanager
def running_server(service):
    """Serve on an ephemeral port in a daemon thread; always torn down."""
    server = RepairServer(service, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(on_ready=lambda _s: ready.set())),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "server did not come up"
    try:
        yield server
    finally:
        server.request_stop()
        thread.join(10)
        service.close()
        assert not thread.is_alive()


def _copy_store(src, dst):
    """Copy a v3 store: the header file plus its sibling segment directory."""
    shutil.copy(src, dst)
    shutil.copytree(segment_dir(src), segment_dir(dst))
    return dst


def _repair_line(source, request_id="r"):
    return json.dumps(
        {"op": "repair", "problem": PROBLEM, "source": source, "id": request_id}
    )


# -- warm-cache acceptance ------------------------------------------------------------


def test_second_identical_request_runs_zero_new_ted_dps(store_path, corpus):
    """The acceptance criterion: a warm service answers a duplicate request
    entirely from the repair memo — zero new TED DPs, one repair-cache hit,
    identical payload."""
    service = RepairService(workers=1)
    runtime = service.add_problem(store_path)
    incorrect = corpus.incorrect_sources[0]

    first = asyncio.run(service.handle_line(_repair_line(incorrect, "first")))
    assert first["ok"] and first["status"] == "repaired"

    dp_before = runtime.caches.ted.counters()["dp_runs"]
    hits_before = runtime.caches.stats.repair_hits
    second = asyncio.run(service.handle_line(_repair_line(incorrect, "second")))
    assert second["ok"] and second["status"] == "repaired"

    assert runtime.caches.ted.counters()["dp_runs"] == dp_before
    assert runtime.caches.stats.repair_hits == hits_before + 1
    for field in ("status", "cost", "relative_size", "num_modified", "feedback"):
        assert second[field] == first[field]
    service.close()


# -- protocol failure modes -----------------------------------------------------------


def test_malformed_line_yields_structured_error_not_disconnect(store_path, corpus):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    with running_server(service) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.send_raw("this is not json")
            error = client.read_response()
            assert error["ok"] is False
            assert error["error"]["code"] == "bad-json"
            # The connection survives; a correct request still succeeds.
            assert client.ping()["ok"] is True

            client.send_raw(json.dumps({"op": "repair", "problem": PROBLEM}))
            error = client.read_response()
            assert error["error"]["code"] == "bad-request"
            assert "source" in error["error"]["message"]

            response = client.request(
                {"op": "repair", "problem": "nope", "source": "x = 1", "id": 7}
            )
            assert response["error"]["code"] == "unknown-problem"
            assert response["id"] == 7

            response = client.request({"op": "frobnicate"})
            assert response["error"]["code"] == "unknown-op"


def test_deadline_exceeded_yields_timeout_status(store_path, corpus):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    with running_server(service) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            response = client.repair(
                corpus.incorrect_sources[0], problem=PROBLEM, deadline=0.0
            )
            assert response["ok"] is True
            assert response["status"] == "timeout"
            # Deadlines are enforced twice — the asyncio timer (which adds a
            # "deadline exceeded" detail) and the engine budget (which
            # yields the paper's bare timeout status); either layer may win
            # the race at deadline 0, and both must surface as "timeout".
            if response["detail"]:
                assert "deadline" in response["detail"]


def test_overload_is_rejected_with_structured_error(store_path, corpus):
    service = RepairService(workers=1, queue_size=1)
    runtime = service.add_problem(store_path)
    state = runtime.snapshot()
    gate, started = threading.Event(), threading.Event()
    original_run = state.engine.run

    def gated_run(attempts, **kwargs):
        started.set()
        assert gate.wait(10)
        return original_run(attempts, **kwargs)

    state.engine.run = gated_run
    try:
        with running_server(service) as server:
            slow_response = {}

            def slow_request():
                with ServiceClient("127.0.0.1", server.port) as client:
                    slow_response.update(
                        client.repair(corpus.incorrect_sources[0], problem=PROBLEM)
                    )

            thread = threading.Thread(target=slow_request)
            thread.start()
            assert started.wait(10)
            with ServiceClient("127.0.0.1", server.port) as client:
                rejected = client.repair(corpus.incorrect_sources[1], problem=PROBLEM)
            assert rejected["ok"] is False
            assert rejected["error"]["code"] == "overloaded"
            gate.set()
            thread.join(10)
            assert slow_response["status"] == "repaired"
    finally:
        gate.set()
    assert service.stats.rejected_overload == 1


# -- hot reload -----------------------------------------------------------------------


def test_hot_reload_mid_request_keeps_serving_the_old_revision(
    tmp_path, spec, corpus, store_path
):
    own_store = tmp_path / "derivatives.json"
    _copy_store(store_path, own_store)
    service = RepairService(workers=2)
    runtime = service.add_problem(own_store)
    assert runtime.revision == 0

    state = runtime.snapshot()
    gate, started = threading.Event(), threading.Event()
    original_run = state.engine.run

    def gated_run(attempts, **kwargs):
        started.set()
        assert gate.wait(10)
        return original_run(attempts, **kwargs)

    state.engine.run = gated_run
    try:
        with running_server(service) as server:
            in_flight_response = {}

            def in_flight_request():
                with ServiceClient("127.0.0.1", server.port) as client:
                    in_flight_response.update(
                        client.repair(corpus.incorrect_sources[0], problem=PROBLEM)
                    )

            thread = threading.Thread(target=in_flight_request)
            thread.start()
            assert started.wait(10)

            # Update the store on disk (revision 0 -> 1) and hot-reload
            # through a second connection while the first request hangs.
            store = ClusterStore.open(own_store, spec.cases)
            assert store.add_correct_source(corpus.correct_sources[0]).accepted
            store.save()
            with ServiceClient("127.0.0.1", server.port) as client:
                reloaded = client.reload(PROBLEM)
            assert reloaded["ok"] is True
            assert reloaded["previous_revision"] == 0
            assert reloaded["revision"] == 1
            assert runtime.revision == 1

            gate.set()
            thread.join(10)
            # The in-flight request is never dropped.  It was admitted on
            # the old lazily-opened generation, whose segments were
            # rewritten on disk before it paged them in; the paging check
            # detected that and the service re-ran it on the reloaded
            # generation, so it reports the revision that answered.
            assert in_flight_response["status"] == "repaired"
            assert in_flight_response["revision"] == 1

            # New requests see the new revision.
            with ServiceClient("127.0.0.1", server.port) as client:
                fresh = client.repair(corpus.incorrect_sources[0], problem=PROBLEM)
            assert fresh["revision"] == 1
    finally:
        gate.set()


def test_reload_evicts_the_replaced_pipelines_repair_memos(
    tmp_path, spec, corpus, store_path
):
    """Each reload retires a pipeline generation; its repair memos must be
    evicted from the shared caches, not stranded forever."""
    own_store = tmp_path / "derivatives.json"
    _copy_store(store_path, own_store)
    service = RepairService(workers=1)
    runtime = service.add_problem(own_store)

    asyncio.run(service.handle_line(_repair_line(corpus.incorrect_sources[0])))
    assert runtime.caches.entry_counts()["repairs"] == 1

    service.reload(PROBLEM)
    assert runtime.caches.entry_counts()["repairs"] == 0

    # The new generation memoizes afresh (and still answers correctly).
    response = asyncio.run(service.handle_line(_repair_line(corpus.incorrect_sources[0])))
    assert response["status"] == "repaired"
    assert runtime.caches.entry_counts()["repairs"] == 1
    service.close()


def test_add_problem_rejects_a_duplicate_problem_name(store_path):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    with pytest.raises(ValueError, match="already served"):
        service.add_problem(store_path)
    service.close()


# -- server lifecycle -----------------------------------------------------------------


def test_shutdown_op_stops_the_server(store_path):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    server = RepairServer(service, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve(on_ready=lambda _s: ready.set())),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10)
    with ServiceClient("127.0.0.1", server.port) as client:
        assert client.shutdown()["ok"] is True
    thread.join(10)
    assert not thread.is_alive()
    service.close()


def test_stats_report_revisions_and_cache_counters(store_path, corpus):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    asyncio.run(service.handle_line(_repair_line(corpus.incorrect_sources[0])))
    stats = asyncio.run(service.handle_line(json.dumps({"op": "stats"})))
    assert stats["ok"] is True
    assert stats["service"]["repairs"] == 1
    problem_stats = stats["problems"][PROBLEM]
    assert problem_stats["revision"] == 0
    assert problem_stats["clusters"] > 0
    assert "dp_runs" in problem_stats["ted"]
    # Stores are opened header-only; one repair pages segments in on demand.
    paging = problem_stats["store_paging"]
    assert paging["segments_total"] > 0
    assert 1 <= paging["segments_loaded"] <= paging["segments_total"]
    service.close()


def test_single_problem_services_accept_requests_without_a_problem_field(
    store_path, corpus
):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    response = asyncio.run(
        service.handle_line(
            json.dumps({"op": "repair", "source": corpus.incorrect_sources[0]})
        )
    )
    assert response["ok"] is True
    assert response["problem"] == PROBLEM
    service.close()


# -- serve CLI ------------------------------------------------------------------------


def test_serve_exits_2_on_missing_store(tmp_path, capsys):
    assert cli_main(["serve", "--clusters", str(tmp_path / "absent.json")]) == 2
    assert "cannot read cluster store" in capsys.readouterr().err


def test_serve_exits_2_on_old_format_store(tmp_path, capsys):
    old = tmp_path / "old.json"
    old.write_text(
        json.dumps(
            {
                "format": "repro-clara-clusterstore",
                "format_version": 1,
                "problem": PROBLEM,
                "language": "python",
                "case_signature": "0" * 64,
                "cluster_count": 0,
                "total_members": 0,
                "clusters": [],
            }
        )
        + "\n"
    )
    assert cli_main(["serve", "--clusters", str(old)]) == 2
    err = capsys.readouterr().err
    assert "format version 1" in err
    assert "rebuild" in err


def test_serve_exits_2_on_unknown_problem(tmp_path, spec, corpus, capsys):
    path = tmp_path / "mystery.json"
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.add_correct_sources(corpus.correct_sources[:2])
    clara.save_clusters(path, problem="not-a-registered-problem")
    assert cli_main(["serve", "--clusters", str(path)]) == 2
    assert "not-a-registered-problem" in capsys.readouterr().err


def test_serve_round_trip_through_the_cli_entry_point(tmp_path, store_path, corpus):
    """End to end through ``main()``: serve on an ephemeral port announced
    via --ready-file, repair one attempt over TCP, shut down cleanly with
    exit code 0."""
    ready_file = tmp_path / "ready"
    result = {}

    def run_cli():
        result["exit"] = cli_main(
            [
                "serve",
                "--clusters",
                str(store_path),
                "--port",
                "0",
                "--workers",
                "1",
                "--ready-file",
                str(ready_file),
            ]
        )

    thread = threading.Thread(target=run_cli, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while not ready_file.exists() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert ready_file.exists(), "serve never wrote its ready file"
    host, port = ready_file.read_text().split()

    with ServiceClient(host, int(port)) as client:
        assert client.ping()["ok"] is True
        response = client.repair(corpus.incorrect_sources[0], problem=PROBLEM)
        assert response["status"] == "repaired"
        assert client.shutdown()["ok"] is True
    thread.join(15)
    assert not thread.is_alive()
    assert result["exit"] == 0
