"""Tests for the evaluation harness (experiment runner, metrics, tables, figures)."""

from __future__ import annotations

import random

import pytest

from repro.evalharness import (
    ascii_bar_chart,
    autograder_comparison_counts,
    cumulative_fraction_below,
    format_failure_breakdown,
    format_table1,
    format_table2,
    modified_expression_distribution,
    provenance_statistics,
    quality_proxy,
    relative_size_histogram,
    render_fig6,
    render_fig7a,
    render_fig7b,
    run_problem,
    run_user_study,
    simulate_grade,
)
from repro.evalharness.experiment import AttemptResult, ProblemResult


@pytest.fixture(scope="module")
def small_result():
    return run_problem(
        "derivatives", n_correct=8, n_incorrect=5, seed=9, run_autograder=True
    )


def test_run_problem_aggregates(small_result):
    assert small_result.problem == "derivatives"
    assert small_result.n_correct == 8
    assert small_result.n_incorrect == 5
    assert small_result.n_clusters >= 1
    assert 0 <= small_result.n_repaired <= small_result.n_incorrect
    assert small_result.repair_rate <= 1.0
    assert small_result.loc_median > 0
    assert small_result.ast_size_median > 0
    # at least some attempts get repaired at this scale
    assert small_result.n_repaired >= 2
    assert small_result.avg_time >= small_result.median_time * 0 and small_result.avg_time >= 0


def test_attempt_records_have_metrics(small_result):
    repaired = [a for a in small_result.attempts if a.repaired]
    assert repaired
    for attempt in repaired:
        assert attempt.cost is not None
        assert attempt.relative_size is not None
        assert attempt.num_modified is not None and attempt.num_modified >= 0
        assert attempt.repaired_passes is True


def test_metrics_functions(small_result):
    results = [small_result]
    histogram = relative_size_histogram(results)
    assert sum(histogram.values()) == len(small_result.relative_sizes())
    assert 0.0 <= cumulative_fraction_below(results, 0.3) <= 1.0
    distribution = modified_expression_distribution(results, tool="clara")
    assert sum(distribution.values()) <= small_result.n_repaired
    comparison = autograder_comparison_counts(results)
    assert set(comparison) == {"equal", "autograder_fewer", "clara_fewer"}
    provenance = provenance_statistics(results)
    assert provenance["total"] == small_result.n_repaired
    quality = quality_proxy(results)
    assert 0.0 <= quality["good_quality"] <= 1.0


def test_table_and_figure_rendering(small_result):
    results = [small_result]
    table = format_table1(results)
    assert "derivatives" in table and "Total" in table and "%" in table
    breakdown = format_failure_breakdown(results)
    assert isinstance(breakdown, str)
    assert "Figure 6" in render_fig6(results)
    assert "Figure 7a" in render_fig7a(results)
    assert "Figure 7b" in render_fig7b(results)
    chart = ascii_bar_chart({"a": 2, "b": 4}, width=10, title="demo")
    assert "demo" in chart and "####" in chart


def test_tables_without_times_omit_wallclock_columns(small_result):
    table1 = format_table1([small_result], with_times=False)
    assert "avg(med) s" not in table1 and "AG avg s" not in table1
    assert "derivatives" in table1 and "Total" in table1
    rows = run_user_study(n_correct=6, n_incorrect=4, seed=5, problems=["special_number"])
    table2 = format_table2(rows, with_times=False)
    assert "avg s" not in table2 and "med s" not in table2
    assert "special_number" in table2


def test_failure_breakdown_counts():
    result = ProblemResult(
        problem="x", n_correct=1, n_clusters=1, n_incorrect=3, clustering_time=0.0
    )
    result.attempts = [
        AttemptResult(problem="x", fault_label="", status="repaired"),
        AttemptResult(problem="x", fault_label="", status="unsupported"),
        AttemptResult(problem="x", fault_label="", status="unsupported"),
    ]
    assert result.failure_breakdown() == {"unsupported": 2}
    assert result.n_repaired == 1


def test_simulated_grades_monotonic_in_quality():
    rng = random.Random(0)
    small = [simulate_grade(0.05, False, rng) for _ in range(200)]
    rng = random.Random(0)
    large = [simulate_grade(0.9, False, rng) for _ in range(200)]
    rng = random.Random(0)
    generic = [simulate_grade(None, True, rng) for _ in range(200)]
    assert sum(small) / len(small) > sum(large) / len(large)
    assert sum(small) / len(small) > sum(generic) / len(generic)
    assert all(1 <= g <= 5 for g in small + large + generic)


def test_user_study_single_problem_row():
    rows = run_user_study(n_correct=6, n_incorrect=4, seed=5, problems=["special_number"])
    assert len(rows) == 1
    row = rows[0]
    assert row.problem == "special_number"
    assert row.n_incorrect == 4
    assert 0 <= row.n_feedback <= row.n_incorrect
    assert row.n_repair_feedback <= row.n_feedback
    assert sum(row.grade_histogram.values()) == row.n_feedback
    table = format_table2(rows)
    assert "special_number" in table and "average usefulness grade" in table
