"""Tests for the bipartite matching and 0-1 ILP solver substrates."""

from __future__ import annotations

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import hopcroft_karp, maximum_matching_size, perfect_matching
from repro.ilp import IlpProblem, InfeasibleError, solve


# -- bipartite matching ---------------------------------------------------------------


def test_perfect_matching_simple():
    left = ["a", "b"]
    right = ["x", "y"]
    edges = {"a": ["x", "y"], "b": ["y"]}
    matching = perfect_matching(left, right, edges)
    assert matching == {"a": "x", "b": "y"}


def test_perfect_matching_none_when_sizes_differ():
    assert perfect_matching(["a"], ["x", "y"], {"a": ["x", "y"]}) is None


def test_perfect_matching_none_when_blocked():
    edges = {"a": ["x"], "b": ["x"]}
    assert perfect_matching(["a", "b"], ["x", "y"], edges) is None


def test_maximum_matching_partial():
    edges = {"a": ["x"], "b": ["x"], "c": ["y"]}
    assert maximum_matching_size(["a", "b", "c"], ["x", "y"], edges) == 2


@settings(max_examples=60)
@given(
    st.integers(1, 6),
    st.integers(1, 6),
    st.data(),
)
def test_hopcroft_karp_matches_networkx(n_left, n_right, data):
    left = [f"l{i}" for i in range(n_left)]
    right = [f"r{i}" for i in range(n_right)]
    edges = {
        u: sorted(data.draw(st.sets(st.sampled_from(right), max_size=n_right), label=u))
        for u in left
    }
    ours = hopcroft_karp(left, right, edges)
    graph = nx.Graph()
    graph.add_nodes_from(left, bipartite=0)
    graph.add_nodes_from(right, bipartite=1)
    for u, vs in edges.items():
        for v in vs:
            graph.add_edge(u, v)
    reference = nx.bipartite.maximum_matching(graph, top_nodes=left)
    assert len(ours) == sum(1 for k in reference if k in set(left))
    # result is a valid matching inside the edge relation
    assert len(set(ours.values())) == len(ours)
    assert all(v in edges[u] for u, v in ours.items())


# -- ILP problem construction -----------------------------------------------------------


def test_problem_construction_and_feasibility_check():
    problem = IlpProblem()
    problem.add_variable("x", objective=2.0)
    problem.add_variable("y", objective=1.0)
    problem.add_exactly_one(["x", "y"])
    problem.add_implication("x", "y")
    assert problem.is_feasible({"x": 0, "y": 1})
    assert not problem.is_feasible({"x": 1, "y": 0})
    assert problem.objective_value({"x": 0, "y": 1}) == 1.0
    with pytest.raises(ValueError):
        problem.add_constraint({"x": 1.0}, "!!", 1.0)


# -- ILP solving ----------------------------------------------------------------------


def test_solve_picks_cheapest_choice():
    problem = IlpProblem()
    for name, cost in (("a", 5.0), ("b", 2.0), ("c", 9.0)):
        problem.add_variable(name, objective=cost)
    problem.add_exactly_one(["a", "b", "c"])
    solution = solve(problem)
    assert solution.values == {"a": 0, "b": 1, "c": 0}
    assert solution.objective == 2.0


def test_solve_assignment_problem():
    # Classic 3x3 assignment problem encoded with exactly-one rows/columns.
    costs = {("r0", "c0"): 4, ("r0", "c1"): 1, ("r0", "c2"): 3,
             ("r1", "c0"): 2, ("r1", "c1"): 0, ("r1", "c2"): 5,
             ("r2", "c0"): 3, ("r2", "c1"): 2, ("r2", "c2"): 2}
    problem = IlpProblem()
    for (row, col), cost in costs.items():
        problem.add_variable(f"{row}:{col}", objective=float(cost))
    for row in ("r0", "r1", "r2"):
        problem.add_exactly_one([f"{row}:c{j}" for j in range(3)])
    for col in ("c0", "c1", "c2"):
        problem.add_exactly_one([f"r{i}:{col}" for i in range(3)])
    solution = solve(problem)
    brute = min(
        sum(costs[(f"r{i}", f"c{p}")] for i, p in enumerate(perm))
        for perm in itertools.permutations(range(3))
    )
    assert solution.objective == brute


def test_solve_respects_implications():
    problem = IlpProblem()
    problem.add_variable("cheap", objective=1.0)
    problem.add_variable("expensive", objective=10.0)
    problem.add_variable("pair", objective=0.0)
    problem.add_exactly_one(["cheap", "expensive"])
    # choosing "cheap" forces "pair", but "pair" conflicts with another choice
    problem.add_implication("cheap", "pair")
    problem.add_constraint({"pair": 1.0}, "<=", 0.0)
    solution = solve(problem)
    assert solution.values["expensive"] == 1
    assert solution.objective == 10.0


def test_infeasible_raises():
    problem = IlpProblem()
    problem.add_variable("x")
    problem.add_constraint({"x": 1.0}, "==", 1.0)
    problem.add_constraint({"x": 1.0}, "==", 0.0)
    with pytest.raises(InfeasibleError):
        solve(problem)


def test_empty_exactly_one_is_infeasible():
    problem = IlpProblem()
    problem.add_constraint([], "==", 1.0)
    with pytest.raises(InfeasibleError):
        solve(problem)


# -- property: solver agrees with brute force on random small problems -------------------


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_solver_matches_brute_force(data):
    n_vars = data.draw(st.integers(2, 6), label="n_vars")
    variables = [f"v{i}" for i in range(n_vars)]
    problem = IlpProblem()
    for var in variables:
        problem.add_variable(var, objective=float(data.draw(st.integers(0, 6), label=var)))
    n_constraints = data.draw(st.integers(1, 4), label="n_constraints")
    for index in range(n_constraints):
        subset = data.draw(
            st.lists(st.sampled_from(variables), min_size=1, max_size=n_vars, unique=True),
            label=f"c{index}",
        )
        sense = data.draw(st.sampled_from(["==", ">=", "<="]), label=f"s{index}")
        rhs = data.draw(st.integers(0, len(subset)), label=f"r{index}")
        problem.add_constraint({v: 1.0 for v in subset}, sense, float(rhs))

    # brute force
    best = None
    for bits in itertools.product((0, 1), repeat=n_vars):
        assignment = dict(zip(variables, bits))
        if problem.is_feasible(assignment):
            cost = problem.objective_value(assignment)
            if best is None or cost < best:
                best = cost

    if best is None:
        with pytest.raises(InfeasibleError):
            solve(problem)
    else:
        solution = solve(problem)
        assert problem.is_feasible(solution.values)
        assert abs(solution.objective - best) < 1e-9
