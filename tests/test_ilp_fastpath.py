"""Tests for the solver fast path: degenerate dispatch, solve memoization
and warm starts (``repro.ilp.fastpath`` / ``repro.ilp.structure``).

The contract under test everywhere: :func:`repro.ilp.solve_fast` is
*objective-identical* to the spec solver :func:`repro.ilp.solver.solve` —
on optimal solves, on infeasible problems and under node limits — and the
repair pipeline produces field-identical outcomes whether or not the
:class:`repro.ilp.SolveCache` memo is enabled."""

from __future__ import annotations

import itertools
import random

import pytest

from helpers.differential import (
    assert_outcomes_field_identical,
    assert_repairs_field_identical,
)

from repro.core.clustering import cluster_programs
from repro.core.pipeline import Clara
from repro.core.repair import find_best_repair
from repro.datasets import generate_corpus, get_problem
from repro.engine import RepairCaches
from repro.frontend import parse_python_source
from repro.graphs import min_cost_perfect_matching
from repro.ilp import (
    IlpProblem,
    InfeasibleError,
    SolveCache,
    analyze_assignment_form,
    problem_fingerprint,
    solve,
    solve_fast,
)

SEED = 20180618


# -- random problem generators (Def. 5.5 shaped) --------------------------------------


def _random_def55_problem(rng: random.Random) -> IlpProblem:
    """Choice groups + implications + arbitrary-sense rows, arbitrary costs."""
    n = rng.randint(2, 7)
    problem = IlpProblem(minimize=rng.random() < 0.8)
    variables = [f"v{i}" for i in range(n)]
    for var in variables:
        problem.add_variable(var, objective=float(rng.randint(-4, 6)))
    for _ in range(rng.randint(1, 3)):
        problem.add_exactly_one(rng.sample(variables, rng.randint(1, n)))
    for _ in range(rng.randint(0, 2)):
        antecedent, consequent = rng.sample(variables, 2)
        problem.add_implication(antecedent, consequent)
    for _ in range(rng.randint(0, 2)):
        subset = rng.sample(variables, rng.randint(1, n))
        sense = rng.choice(["==", ">=", "<="])
        problem.add_constraint(
            {v: 1.0 for v in subset}, sense, float(rng.randint(0, len(subset)))
        )
    return problem


def _random_assignment_problem(rng: random.Random) -> IlpProblem:
    """Row/column exactly-one groups: assignment-degenerate by construction.

    Rows and columns may differ in size and slack variables appear only
    sometimes, so a fraction of the generated problems is (provenly)
    infeasible — no perfect matching pads the smaller side."""
    rows, cols = rng.randint(1, 3), rng.randint(1, 3)
    problem = IlpProblem()
    for i in range(rows):
        for j in range(cols):
            problem.add_variable(f"x{i}{j}", objective=float(rng.randint(-3, 9)))
    for i in range(rows):
        members = [f"x{i}{j}" for j in range(cols)]
        if rng.random() < 0.5:
            members.append(
                problem.add_variable(f"rs{i}", objective=float(rng.randint(0, 9)))
            )
        problem.add_exactly_one(members)
    for j in range(cols):
        members = [f"x{i}{j}" for i in range(rows)]
        if rng.random() < 0.5:
            members.append(
                problem.add_variable(f"cs{j}", objective=float(rng.randint(0, 9)))
            )
        problem.add_exactly_one(members)
    for k in range(rng.randint(0, 2)):
        problem.add_variable(f"free{k}", objective=float(rng.randint(-3, 3)))
    return problem


def _brute_force(problem: IlpProblem) -> float | None:
    best = None
    for bits in itertools.product((0, 1), repeat=len(problem.variables)):
        values = dict(zip(problem.variables, bits))
        if problem.is_feasible(values):
            objective = problem.objective_value(values)
            if best is None or (
                objective < best if problem.minimize else objective > best
            ):
                best = objective
    return best


def _objective_or_none(problem: IlpProblem, **kwargs) -> float | None:
    try:
        return solve_fast(problem, **kwargs).objective
    except InfeasibleError as error:
        assert error.proven, "an unlimited solve must prove infeasibility"
        return None


# -- the min-cost matching substrate ---------------------------------------------------


def test_min_cost_matching_agrees_with_permutation_brute_force():
    rng = random.Random(SEED)
    for _ in range(60):
        n = rng.randint(1, 5)
        left = [f"l{i}" for i in range(n)]
        right = [f"r{j}" for j in range(n)]
        edges = {
            (u, v): float(rng.randint(-5, 9)) for u in left for v in right
        }
        result = min_cost_perfect_matching(left, right, edges)
        assert result is not None
        matching, cost = result
        assert sorted(matching) == left
        assert sorted(matching.values()) == right
        brute = min(
            sum(edges[(left[i], right[p[i]])] for i in range(n))
            for p in itertools.permutations(range(n))
        )
        assert abs(cost - brute) < 1e-9
        assert abs(sum(edges[e] for e in matching.items()) - brute) < 1e-9


def test_min_cost_matching_detects_impossible_instances():
    assert min_cost_perfect_matching(["a"], ["x", "y"], {("a", "x"): 1.0}) is None
    blocked = {("a", "x"): 1.0, ("b", "x"): 2.0}
    assert min_cost_perfect_matching(["a", "b"], ["x", "y"], blocked) is None
    assert min_cost_perfect_matching([], [], {}) == ({}, 0.0)


# -- objective identity: fast path vs the spec solver ---------------------------------


def test_solve_fast_objective_identical_on_def55_problems():
    rng = random.Random(SEED)
    for trial in range(150):
        problem = _random_def55_problem(rng)
        cache = SolveCache()
        fast = _objective_or_none(problem, cache=cache)
        try:
            spec = solve(problem).objective
        except InfeasibleError:
            spec = None
        brute = _brute_force(problem)
        assert (fast is None) == (spec is None) == (brute is None), trial
        if brute is not None:
            assert abs(fast - brute) < 1e-9 and abs(spec - brute) < 1e-9, trial
        # Second solve of the same problem is answered from the memo with
        # the same verdict.
        assert _objective_or_none(problem, cache=cache) == fast
        assert cache.hits == 1 and cache.misses == 1


def test_degenerate_dispatch_is_exact_and_explores_no_nodes():
    rng = random.Random(SEED)
    dispatched = infeasible = 0
    for trial in range(150):
        problem = _random_assignment_problem(rng)
        assert analyze_assignment_form(problem) is not None, trial
        cache = SolveCache()
        fast = _objective_or_none(problem, cache=cache)
        assert cache.degenerate_dispatches == 1 and cache.bnb_fallbacks == 0
        assert cache.nodes_explored == 0
        try:
            spec = solve(problem).objective
        except InfeasibleError:
            spec = None
        assert (fast is None) == (spec is None), trial
        if fast is None:
            infeasible += 1
        else:
            assert abs(fast - spec) < 1e-9, trial
            dispatched += 1
        # Proven verdicts (both kinds) are memoized.
        assert _objective_or_none(problem, cache=cache) == fast
        assert cache.hits == 1
    assert dispatched > 50 and infeasible > 10  # both regimes exercised


def test_solutions_returned_by_degenerate_dispatch_are_feasible():
    rng = random.Random(SEED + 1)
    for _ in range(80):
        problem = _random_assignment_problem(rng)
        try:
            solution = solve_fast(problem)
        except InfeasibleError:
            continue
        assert problem.is_feasible(solution.values)
        assert solution.optimal and solution.nodes_explored == 0


def test_implications_decline_the_degenerate_form():
    problem = IlpProblem()
    problem.add_variable("a", objective=1.0)
    problem.add_variable("b", objective=2.0)
    problem.add_exactly_one(["a", "b"])
    problem.add_implication("a", "b")
    assert analyze_assignment_form(problem) is None
    cache = SolveCache()
    solution = solve_fast(problem, cache=cache)
    assert cache.bnb_fallbacks == 1 and cache.degenerate_dispatches == 0
    assert solution.objective == solve(problem).objective


def test_odd_group_cycles_decline_the_degenerate_form():
    problem = IlpProblem()
    for var in ("a", "b", "c"):
        problem.add_variable(var)
    problem.add_exactly_one(["a", "b"])
    problem.add_exactly_one(["b", "c"])
    problem.add_exactly_one(["a", "c"])
    assert analyze_assignment_form(problem) is None  # non-bipartite
    with pytest.raises(InfeasibleError) as excinfo:
        solve_fast(problem)
    assert excinfo.value.proven


# -- canonical fingerprints ------------------------------------------------------------


def test_fingerprint_is_insensitive_to_construction_order():
    rng = random.Random(SEED)
    for _ in range(30):
        problem = _random_def55_problem(rng)
        shuffled = IlpProblem(minimize=problem.minimize)
        for var in sorted(problem.variables, key=lambda v: rng.random()):
            shuffled.add_variable(var, objective=problem.objective.get(var, 0.0))
        constraints = list(problem.constraints)
        rng.shuffle(constraints)
        for constraint in constraints:
            coeffs = list(constraint.coeffs)
            rng.shuffle(coeffs)
            shuffled.add_constraint(coeffs, constraint.sense, constraint.rhs)
        assert problem_fingerprint(shuffled) == problem_fingerprint(problem)
        # ... and therefore shares a memo entry.
        cache = SolveCache()
        first = _objective_or_none(problem, cache=cache)
        assert _objective_or_none(shuffled, cache=cache) == first
        assert cache.hits == 1


def test_fingerprint_distinguishes_different_problems():
    base = IlpProblem()
    base.add_variable("a", objective=1.0)
    base.add_variable("b", objective=2.0)
    base.add_exactly_one(["a", "b"])

    cheaper = IlpProblem()
    cheaper.add_variable("a", objective=1.0)
    cheaper.add_variable("b", objective=1.0)
    cheaper.add_exactly_one(["a", "b"])
    assert problem_fingerprint(cheaper) != problem_fingerprint(base)

    relaxed = IlpProblem()
    relaxed.add_variable("a", objective=1.0)
    relaxed.add_variable("b", objective=2.0)
    relaxed.add_constraint({"a": 1.0, "b": 1.0}, "<=", 1.0)
    assert problem_fingerprint(relaxed) != problem_fingerprint(base)

    maximized = IlpProblem(minimize=False)
    maximized.add_variable("a", objective=1.0)
    maximized.add_variable("b", objective=2.0)
    maximized.add_exactly_one(["a", "b"])
    assert problem_fingerprint(maximized) != problem_fingerprint(base)


# -- node limits (boundary regression) and what may be cached -------------------------


def _hard_feasible_problem() -> IlpProblem:
    """Small but branchy: overlapping groups, implications, a packing row."""
    problem = IlpProblem()
    costs = {"a": 3.0, "b": 2.0, "c": 5.0, "d": 1.0, "e": 4.0, "f": 2.0}
    for var, cost in costs.items():
        problem.add_variable(var, objective=cost)
    problem.add_exactly_one(["a", "b", "c"])
    problem.add_exactly_one(["c", "d", "e"])
    problem.add_exactly_one(["e", "f", "a"])
    problem.add_implication("d", "f")
    problem.add_constraint({"b": 1.0, "d": 1.0, "f": 1.0}, "<=", 2.0)
    return problem


def test_node_limit_boundary_always_returns_incumbent_or_unproven():
    problem = _hard_feasible_problem()
    reference = solve(problem)
    assert reference.optimal
    full_nodes = reference.nodes_explored
    assert full_nodes > 2  # the sweep below must exercise real truncation
    first_return = None
    for limit in range(1, full_nodes + 2):
        try:
            solution = solve(problem, node_limit=limit)
        except InfeasibleError as error:
            # Truncation may legitimately precede the first incumbent, but
            # then the verdict must be unproven — and once any limit admits
            # an incumbent, every larger limit must return (never raise).
            assert not error.proven
            assert first_return is None, f"raise after a return at limit={limit}"
            continue
        if first_return is None:
            first_return = limit
        assert problem.is_feasible(solution.values)
        if limit <= full_nodes:
            assert not solution.optimal  # hit limit -> incumbent, optimal=False
            assert solution.nodes_explored == limit
            assert solution.objective >= reference.objective
        else:
            assert solution.optimal
            assert solution.objective == reference.objective
            assert solution.nodes_explored == full_nodes
    assert first_return is not None and first_return <= full_nodes


def test_infeasible_error_is_unproven_under_truncation():
    problem = IlpProblem()
    for var in ("a", "b", "c"):
        problem.add_variable(var)
    problem.add_exactly_one(["a", "b"])
    problem.add_exactly_one(["b", "c"])
    problem.add_exactly_one(["a", "c"])
    with pytest.raises(InfeasibleError) as full:
        solve(problem)
    assert full.value.proven and full.value.nodes_explored > 0
    with pytest.raises(InfeasibleError) as truncated:
        solve(problem, node_limit=1)
    assert not truncated.value.proven


def test_truncated_incumbents_are_not_cached():
    problem = _hard_feasible_problem()
    full_nodes = solve(problem).nodes_explored
    cache = SolveCache()
    truncated = None
    for limit in range(1, full_nodes + 1):
        try:
            truncated = solve_fast(problem, node_limit=limit, cache=cache)
            break
        except InfeasibleError:
            continue
    assert truncated is not None and not truncated.optimal
    assert cache.entry_counts() == {"solves": 0}
    # The next (unlimited) solve is a miss and runs for real ...
    exact = solve_fast(problem, cache=cache)
    assert exact.optimal and cache.hits == 0
    # ... and only then is the optimum memoized.
    assert cache.entry_counts() == {"solves": 1}
    assert solve_fast(problem, cache=cache).objective == exact.objective
    assert cache.hits == 1


def test_unproven_infeasibility_is_not_cached():
    problem = IlpProblem()
    for var in ("a", "b", "c"):
        problem.add_variable(var)
    problem.add_exactly_one(["a", "b"])
    problem.add_exactly_one(["b", "c"])
    problem.add_exactly_one(["a", "c"])
    cache = SolveCache()
    with pytest.raises(InfeasibleError):
        solve_fast(problem, node_limit=1, cache=cache)
    assert cache.entry_counts() == {"solves": 0}
    with pytest.raises(InfeasibleError):  # full solve proves it ...
        solve_fast(problem, cache=cache)
    assert cache.entry_counts() == {"solves": 1}
    with pytest.raises(InfeasibleError) as hit:  # ... and the proof is reused
        solve_fast(problem, cache=cache)
    assert hit.value.proven and cache.hits == 1


def test_empty_choice_group_is_proven_infeasible_via_dispatch():
    problem = IlpProblem()
    problem.add_variable("x", objective=1.0)
    problem.add_exactly_one(["x"])
    problem.add_constraint([], "==", 1.0, name="infeasible")
    cache = SolveCache()
    with pytest.raises(InfeasibleError) as excinfo:
        solve_fast(problem, cache=cache)
    assert excinfo.value.proven
    assert cache.degenerate_dispatches == 1 and cache.nodes_explored == 0
    assert cache.entry_counts() == {"solves": 1}


# -- warm starts ----------------------------------------------------------------------


def test_warm_start_returns_the_cold_solution_when_it_beats_the_bound():
    rng = random.Random(SEED)
    strict_prunes = 0
    for trial in range(100):
        problem = _random_def55_problem(rng)
        try:
            cold = solve(problem)
        except InfeasibleError:
            continue
        # Degenerate problems dispatch to the assignment solver, whose
        # tie-breaking may legitimately pick a different optimal assignment
        # than branch-and-bound; compare warm against the cold *fast-path*
        # solution so both sides take the same dispatch route.
        cold_fast = solve_fast(problem)
        margin = 1.0 if problem.minimize else -1.0
        warm = solve_fast(problem, upper_bound=cold.objective + margin)
        assert warm is not None, trial
        assert warm.values == cold_fast.values, trial
        assert warm.objective == cold.objective, trial
        if warm.nodes_explored < cold.nodes_explored:
            strict_prunes += 1
        # A bound at (or below) the optimum can never be beaten.
        assert solve_fast(problem, upper_bound=cold.objective) is None
    assert strict_prunes > 0  # the incumbent really prunes the search


def test_warm_start_applies_to_memoized_solutions():
    problem = _hard_feasible_problem()
    cache = SolveCache()
    exact = solve_fast(problem, cache=cache)
    assert solve_fast(problem, cache=cache, upper_bound=exact.objective) is None
    better = solve_fast(problem, cache=cache, upper_bound=exact.objective + 1.0)
    assert better is not None and better.objective == exact.objective
    assert cache.hits == 2  # both bounded solves were answered from the memo


def test_proven_infeasibility_outranks_the_bound():
    problem = IlpProblem()
    problem.add_variable("x")
    problem.add_constraint({"x": 1.0}, "==", 1.0)
    problem.add_constraint({"x": 1.0}, "==", 0.0)
    with pytest.raises(InfeasibleError) as excinfo:
        solve_fast(problem, upper_bound=10.0)
    assert excinfo.value.proven


# -- SolveCache ownership and plumbing -------------------------------------------------


def test_repair_caches_own_a_solve_cache():
    caches = RepairCaches()
    assert isinstance(caches.solve, SolveCache)
    assert caches.solve.enabled
    assert RepairCaches(enabled=False).solve.enabled is False

    problem = _hard_feasible_problem()
    solve_fast(problem, cache=caches.solve)
    assert caches.entry_counts()["solves"] == 1
    caches.clear()
    assert caches.entry_counts()["solves"] == 0
    counters = caches.solve.counters()
    assert counters["misses"] == 1  # counters survive clear()


def test_disabled_solve_cache_counts_misses_and_stores_nothing():
    cache = SolveCache(enabled=False)
    problem = _hard_feasible_problem()
    first = solve_fast(problem, cache=cache)
    second = solve_fast(problem, cache=cache)
    assert first.objective == second.objective
    assert cache.hits == 0 and cache.misses == 2
    assert cache.bnb_fallbacks == 2 and cache.nodes_explored > 0
    assert cache.entry_counts() == {"solves": 0}


# -- differential end to end: SolveCache on vs off ------------------------------------


def test_repair_outcomes_identical_with_solve_cache_on_vs_off():
    """find_best_repair over a corpus (with duplicated attempts, the MOOC
    redundancy the memo targets) is field-identical with the SolveCache
    enabled vs disabled — only the solve counters may differ."""
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 8, 6, seed=11)
    correct = [parse_python_source(s) for s in corpus.correct_sources]
    clusters = cluster_programs(correct, problem.cases).clusters
    attempts = [parse_python_source(s) for s in corpus.incorrect_sources * 2]

    uncached = RepairCaches()
    uncached.solve.enabled = False
    baseline = [
        find_best_repair(p, clusters, caches=uncached) for p in attempts
    ]
    for cluster in clusters:  # drop reference-value memos filled above
        cluster.reset_runtime_caches()
    cached = RepairCaches()
    memoized = [
        find_best_repair(p, clusters, caches=cached) for p in attempts
    ]

    assert_repairs_field_identical(memoized, baseline)
    assert cached.solve.hits > 0, "duplicated attempts must hit the solve memo"
    assert cached.solve.hits + cached.solve.misses == uncached.solve.misses
    assert cached.solve.nodes_explored < uncached.solve.nodes_explored


def test_pipeline_feedback_identical_with_solve_cache_on_vs_off():
    """Full pipeline differential (mirrors ``tests/test_exec_fastpath.py``):
    statuses, repairs and feedback *text* agree with the memo on and off."""
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 8, 6, seed=7)

    outcomes = []
    for disable in (True, False):
        clara = Clara(problem.cases)
        if disable:
            clara.caches.solve.enabled = False
        clara.add_correct_sources(corpus.correct_sources)
        outcomes.append([clara.repair_source(s) for s in corpus.incorrect_sources])

    baseline, memoized = outcomes
    assert len(baseline) == len(memoized)
    assert_outcomes_field_identical(memoized, baseline)
