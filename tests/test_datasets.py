"""Tests for problem specs, variants, mutations and corpus generation."""

from __future__ import annotations

import random

import pytest

from repro.core.inputs import is_correct
from repro.datasets import (
    EMPTY_LABEL,
    UNSUPPORTED_LABEL,
    all_problems,
    generate_corpus,
    get_problem,
    make_correct_variant,
    mutate_source,
    registry,
)
from repro.datasets.mutations import make_empty_attempt, make_unsupported_attempt
from repro.datasets.variants import rename_c_variables, rename_python_variables
from repro.frontend import FrontendError, parse_source


def test_registry_contains_all_nine_problems():
    problems = registry()
    assert len(problems) == 9
    assert {p.experiment for p in problems.values()} == {"mooc", "user-study"}
    assert len(all_problems(experiment="mooc")) == 3
    assert len(all_problems(experiment="user-study")) == 6


def test_get_problem_unknown():
    with pytest.raises(KeyError):
        get_problem("nope")


@pytest.mark.parametrize("spec", all_problems(), ids=lambda s: s.name)
def test_all_reference_solutions_are_correct(spec):
    for source in spec.reference_sources:
        program = parse_source(source, language=spec.language, entry=spec.entry)
        assert is_correct(program, spec.cases), f"bad reference for {spec.name}"


@pytest.mark.parametrize("spec", all_problems(), ids=lambda s: s.name)
def test_equivalence_swaps_preserve_correctness(spec):
    for original, replacement in spec.equivalence_swaps:
        for source in spec.reference_sources:
            if original not in source:
                continue
            swapped = source.replace(original, replacement, 1)
            program = parse_source(swapped, language=spec.language, entry=spec.entry)
            assert is_correct(program, spec.cases), (
                f"swap {original!r} -> {replacement!r} broke a reference of {spec.name}"
            )


def test_rename_python_variables_preserves_behaviour(paper_sources, deriv_cases):
    rng = random.Random(3)
    renamed = rename_python_variables(paper_sources["C1"], rng)
    program = parse_source(renamed)
    assert is_correct(program, deriv_cases)


def test_rename_c_variables_preserves_strings_and_behaviour():
    spec = get_problem("special_number")
    rng = random.Random(3)
    renamed = rename_c_variables(spec.reference_sources[0], rng)
    assert "YES" in renamed and "NO" in renamed and "%d" in renamed
    program = parse_source(renamed, language="c")
    assert is_correct(program, spec.cases)


def test_make_correct_variant_is_correct_for_every_problem():
    rng = random.Random(9)
    for spec in all_problems():
        variant = make_correct_variant(spec, spec.reference_sources[0], rng)
        program = parse_source(variant, language=spec.language, entry=spec.entry)
        assert is_correct(program, spec.cases)


def test_mutations_produce_parsable_but_incorrect_programs():
    spec = get_problem("derivatives")
    rng = random.Random(5)
    seen_incorrect = 0
    for _ in range(30):
        mutation = mutate_source(spec, spec.reference_sources[0], rng, allow_special=False)
        if mutation is None:
            continue
        try:
            program = parse_source(mutation.source)
        except FrontendError:
            continue
        if not is_correct(program, spec.cases):
            seen_incorrect += 1
    assert seen_incorrect >= 5


def test_special_attempts():
    spec = get_problem("derivatives")
    empty = make_empty_attempt(spec)
    assert empty.label == EMPTY_LABEL and "def computeDeriv" in empty.source
    unsupported = make_unsupported_attempt(spec)
    assert unsupported.label == UNSUPPORTED_LABEL
    c_spec = get_problem("trapezoid")
    assert "main" in make_empty_attempt(c_spec).source


def test_generate_corpus_counts_and_determinism():
    corpus_a = generate_corpus("oddTuples", 12, 8, seed=42)
    corpus_b = generate_corpus("oddTuples", 12, 8, seed=42)
    assert len(corpus_a.correct) == 12
    assert len(corpus_a.incorrect) == 8
    assert corpus_a.correct_sources == corpus_b.correct_sources
    assert corpus_a.incorrect_sources == corpus_b.incorrect_sources
    corpus_c = generate_corpus("oddTuples", 12, 8, seed=43)
    assert corpus_c.incorrect_sources != corpus_a.incorrect_sources


def test_generate_corpus_deterministic_across_processes():
    """Corpora must not depend on the per-process hash salt (PYTHONHASHSEED).

    Regression test: seeding the corpus RNG with ``hash(problem.name)`` made
    every committed results/ artifact irreproducible because str hashing is
    salted per interpreter process.
    """
    import hashlib
    import os
    import subprocess
    import sys

    script = (
        "import hashlib\n"
        "from repro.datasets import generate_corpus\n"
        "c = generate_corpus('oddTuples', 6, 4, seed=42)\n"
        "blob = '\\x00'.join(c.correct_sources + c.incorrect_sources)\n"
        "print(hashlib.sha256(blob.encode()).hexdigest())\n"
    )
    digests = set()
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        digests.add(out.stdout.strip())
    corpus = generate_corpus("oddTuples", 6, 4, seed=42)
    blob = "\x00".join(corpus.correct_sources + corpus.incorrect_sources)
    digests.add(hashlib.sha256(blob.encode()).hexdigest())
    assert len(digests) == 1, "corpus varies with the process hash salt"


def test_generate_corpus_correct_pool_verified():
    corpus = generate_corpus("fibonacci", 8, 4, seed=1)
    spec = get_problem("fibonacci")
    for source in corpus.correct_sources:
        assert is_correct(parse_source(source, language="c"), spec.cases)


def test_generate_corpus_incorrect_pool_fails_tests():
    corpus = generate_corpus("derivatives", 8, 6, seed=1)
    spec = get_problem("derivatives")
    for attempt in corpus.incorrect:
        if attempt.label in (EMPTY_LABEL, UNSUPPORTED_LABEL):
            continue
        program = parse_source(attempt.source)
        assert not is_correct(program, spec.cases)
