"""Tests for the cluster store subsystem: fingerprints, pruned/parallel
clustering, serialization round-trips and the persistence CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro import Clara
from repro.cli import main as cli_main
from repro.clusterstore import (
    ClusterStoreError,
    export_clusters,
    load_clusters,
    program_fingerprint,
)
from repro.clusterstore.segments import segment_dir
from repro.clusterstore.serialize import (
    decode_expr,
    decode_program,
    encode_expr,
    encode_program,
)
from repro.core.clustering import cluster_programs
from repro.core.inputs import program_traces
from repro.datasets import generate_corpus, get_problem
from repro.datasets.variants import rename_python_variables
from repro.engine import BatchRepairEngine
from repro.frontend import parse_python_source
from repro.model.expr import Const, Op, Var


# -- fingerprints ---------------------------------------------------------------------


def test_fingerprint_invariant_under_matching(deriv_cases, paper_sources):
    """Matching programs (C1 and its renaming) share a fingerprint."""
    original = parse_python_source(paper_sources["C1"])
    renamed = parse_python_source(
        rename_python_variables(paper_sources["C1"], random.Random(7))
    )
    fp_original = program_fingerprint(original, program_traces(original, deriv_cases))
    fp_renamed = program_fingerprint(renamed, program_traces(renamed, deriv_cases))
    assert fp_original == fp_renamed
    assert fp_original.digest == fp_renamed.digest


def test_fingerprint_separates_different_strategies(deriv_cases, paper_sources):
    """A guard-first solution takes different paths, so it must not share a
    bucket with the loop-first strategy."""
    guard_first = (
        "def computeDeriv(poly):\n"
        "    if len(poly) <= 1:\n"
        "        return [0.0]\n"
        "    out = []\n"
        "    for i in range(1, len(poly)):\n"
        "        out.append(1.0*poly[i]*i)\n"
        "    return out\n"
    )
    loop_first = parse_python_source(paper_sources["C1"])
    guarded = parse_python_source(guard_first)
    fp_loop = program_fingerprint(loop_first, program_traces(loop_first, deriv_cases))
    fp_guard = program_fingerprint(guarded, program_traces(guarded, deriv_cases))
    assert fp_loop != fp_guard


@pytest.mark.parametrize("problem_name", ["derivatives", "oddTuples"])
def test_pruned_clustering_identical_to_exhaustive(problem_name):
    """Fingerprint pruning must never change the clustering — same cluster
    ids, sizes and pools (provenance included) — while running strictly
    fewer full matches on corpora with more than one cluster."""
    problem = get_problem(problem_name)
    corpus = generate_corpus(problem, 14, 0, seed=11)

    def parsed():
        return [
            parse_python_source(source, entry=problem.entry)
            for source in corpus.correct_sources
        ]

    exhaustive = cluster_programs(parsed(), problem.cases, prune=False)
    pruned = cluster_programs(parsed(), problem.cases, prune=True)
    assert pruned.signature() == exhaustive.signature()
    assert pruned.stats.full_matches <= exhaustive.stats.full_matches
    if pruned.stats.buckets > 1:
        assert pruned.stats.full_matches < exhaustive.stats.full_matches


def test_parallel_cluster_build_is_deterministic():
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 14, 0, seed=3)

    def build(workers):
        programs = [parse_python_source(s) for s in corpus.correct_sources]
        return cluster_programs(programs, problem.cases, workers=workers)

    assert build(1).signature() == build(4).signature()


# -- serialization --------------------------------------------------------------------


def test_expression_round_trip_preserves_value_types():
    expr = Op(
        "ListInit",
        Const([1, 2.5, "x"]),
        Const((True, None)),
        Op("Add", Var("a"), Const(0)),
    )
    decoded = decode_expr(json.loads(json.dumps(encode_expr(expr))))
    assert decoded == expr
    # list/tuple and bool/int distinctions survive JSON.
    assert isinstance(decoded.args[0].value, list)
    assert isinstance(decoded.args[1].value, tuple)
    assert decoded.args[1].value[0] is True


def test_program_round_trip_preserves_structure_key(paper_sources):
    program = parse_python_source(paper_sources["C1"])
    decoded = decode_program(json.loads(json.dumps(encode_program(program))))
    assert decoded.structure_key() == program.structure_key()
    assert decoded.source == program.source
    for loc_id in program.location_ids():
        assert decoded.locations[loc_id].name == program.locations[loc_id].name
        assert decoded.locations[loc_id].line == program.locations[loc_id].line


# -- the store ------------------------------------------------------------------------


@pytest.fixture(scope="module")
def deriv_setup():
    problem = get_problem("derivatives")
    corpus = generate_corpus(problem, 12, 6, seed=2018)
    clara = Clara(cases=problem.cases)
    clara.add_correct_sources(corpus.correct_sources)
    return problem, corpus, clara


def _outcome_key(record):
    """Everything observable about an outcome except wall-clock time."""
    data = record.to_json()
    data.pop("elapsed")
    return data


def test_save_load_round_trip_preserves_repair_outcomes(deriv_setup, tmp_path):
    problem, corpus, clara = deriv_setup
    store_path = clara.save_clusters(tmp_path / "clusters.json", problem=problem.name)

    direct = BatchRepairEngine(clara, workers=1).run(corpus.incorrect_sources)

    fresh = Clara(cases=problem.cases)
    loaded_engine = BatchRepairEngine.from_store(store_path, fresh, workers=1)
    loaded = loaded_engine.run(corpus.incorrect_sources)

    assert fresh.cluster_count == clara.cluster_count
    assert fresh.cluster_sizes() == clara.cluster_sizes()
    assert [_outcome_key(r) for r in loaded.records] == [
        _outcome_key(r) for r in direct.records
    ]


def test_store_is_byte_stable(deriv_setup, tmp_path):
    problem, _corpus, clara = deriv_setup
    first = clara.save_clusters(tmp_path / "a.json", problem=problem.name)
    second = clara.save_clusters(tmp_path / "b.json", problem=problem.name)
    assert first.read_bytes() == second.read_bytes()
    # The segment files must be byte-stable too, name for name.
    first_segments = sorted(segment_dir(first).iterdir())
    second_segments = sorted(segment_dir(second).iterdir())
    assert [p.name for p in first_segments] == [p.name for p in second_segments]
    for one, other in zip(first_segments, second_segments):
        assert one.read_bytes() == other.read_bytes()


def test_load_rejects_bumped_format_version(deriv_setup, tmp_path):
    problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json")
    document = json.loads(path.read_text())
    document["format_version"] += 1
    path.write_text(json.dumps(document))
    with pytest.raises(ClusterStoreError, match="format version"):
        load_clusters(path, cases=problem.cases)
    with pytest.raises(ClusterStoreError, match="format version"):
        Clara(cases=problem.cases).load_clusters(path)


def test_load_rejects_non_store_files(tmp_path):
    path = tmp_path / "not-a-store.json"
    path.write_text('{"hello": "world"}')
    with pytest.raises(ClusterStoreError, match="not a cluster store"):
        load_clusters(path)
    path.write_text("{broken json")
    with pytest.raises(ClusterStoreError, match="not valid JSON"):
        load_clusters(path)
    with pytest.raises(ClusterStoreError, match="cannot read"):
        load_clusters(tmp_path / "missing.json")


def test_load_rejects_mismatched_case_set(deriv_setup, tmp_path):
    _problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json")
    other = get_problem("oddTuples")
    with pytest.raises(ClusterStoreError, match="different test-case set"):
        Clara(cases=other.cases).load_clusters(path)
    # Opting out loads the clusters anyway (inspection-style use).
    inspector = Clara(cases=other.cases)
    assert inspector.load_clusters(path, check_cases=False) == clara.cluster_count


def test_load_rejects_mismatched_language(deriv_setup, tmp_path):
    problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json")
    with pytest.raises(ClusterStoreError, match="language|programs"):
        Clara(cases=problem.cases, language="c").load_clusters(path)


# -- failure diagnostics (original indices) -------------------------------------------


def test_add_correct_sources_reports_original_indices(deriv_cases, paper_sources, monkeypatch):
    """Failure indices must point into the caller's source list even when
    earlier sources were skipped for parse reasons."""
    from repro.engine.cache import RepairCaches

    crashing = paper_sources["C2"]
    real_traces = RepairCaches.traces

    def exploding(self, program, cases):
        if program.source == crashing:
            raise RuntimeError("boom")
        return real_traces(self, program, cases)

    monkeypatch.setattr(RepairCaches, "traces", exploding)
    clara = Clara(deriv_cases)
    sources = [
        "def computeDeriv(poly:",  # index 0: does not parse, silently skipped
        paper_sources["C1"],  # index 1: clusters fine
        crashing,  # index 2: fails at execution time
    ]
    result = clara.add_correct_sources(sources, verify=False)
    assert clara.cluster_count == 1
    assert len(result.failures) == 1
    index, reason = result.failures[0]
    assert index == 2  # original position, not position 1 in the filtered list
    assert "boom" in reason
    assert clara.clustering_failures == result.failures


# -- CLI ------------------------------------------------------------------------------


def test_cli_cluster_build_info_batch_round_trip(tmp_path, capsys):
    store = tmp_path / "clusters.json"
    assert (
        cli_main(
            [
                "cluster",
                "build",
                "--problem",
                "derivatives",
                "--correct",
                "8",
                "--output",
                str(store),
            ]
        )
        == 0
    )
    assert store.exists()

    assert cli_main(["cluster", "info", str(store)]) == 0
    info = capsys.readouterr().out
    assert "format version: 3" in info
    assert "derivatives" in info
    assert "segments:" in info

    attempts = tmp_path / "attempts"
    attempts.mkdir()
    (attempts / "a0.py").write_text(
        "def computeDeriv(poly):\n"
        "    new = []\n"
        "    for i in range(1, len(poly)):\n"
        "        new.append(float(i*poly[i]))\n"
        "    if new == []:\n"
        "        return 0.0\n"
        "    return new\n"
    )
    report = tmp_path / "report.jsonl"
    assert (
        cli_main(
            [
                "batch",
                "--problem",
                "derivatives",
                "--attempts",
                str(attempts),
                "--clusters",
                str(store),
                "--workers",
                "1",
                "--output",
                str(report),
            ]
        )
        == 0
    )
    lines = [json.loads(line) for line in report.read_text().splitlines()]
    assert lines[0]["status"] == "repaired"


def test_cli_cluster_info_rejects_bad_store(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"nope": 1}')
    assert cli_main(["cluster", "info", str(bad)]) == 2
    assert "not a cluster store" in capsys.readouterr().err


def test_cli_batch_rejects_bad_store(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"nope": 1}')
    attempts = tmp_path / "a.py"
    attempts.write_text("def computeDeriv(poly):\n    return poly\n")
    assert (
        cli_main(
            [
                "batch",
                "--problem",
                "derivatives",
                "--attempts",
                str(attempts),
                "--clusters",
                str(bad),
            ]
        )
        == 2
    )
    assert "not a cluster store" in capsys.readouterr().err


# -- pool indexes (repair fast path) --------------------------------------------------


def test_store_round_trips_pool_indexes(deriv_setup, tmp_path):
    """A loaded store must serve the *persisted* pool indexes — equal to
    freshly built ones — without recomputing them."""
    problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json", problem=problem.name)
    stored = load_clusters(path, cases=problem.cases)
    by_id = {cluster.cluster_id: cluster for cluster in stored.clusters}
    checked = 0
    for original in clara.clusters:
        loaded = by_id[original.cluster_id]
        for (loc_id, var), pool in original.expressions.items():
            fresh = original.pool_index_for(loc_id, var)
            decoded = loaded.pool_index_for(loc_id, var)
            assert decoded == fresh
            assert len(decoded) == len(pool)
            for index, entry in zip(decoded, pool):
                assert index.size == entry.expr.size()
                assert index.variables == tuple(sorted(entry.expr.variables()))
            checked += len(pool)
    assert checked > 0


def test_store_rejects_mismatched_pool_index_length(deriv_setup, tmp_path):
    problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json")
    seg_path = sorted(segment_dir(path).glob("seg-*.json"))[0]
    document = json.loads(seg_path.read_text())
    entry = document["clusters"][0]["expressions"][0]
    entry[3] = entry[3][:-1] + [entry[3][-1], entry[3][-1]]  # one index too many
    text = json.dumps(document)
    seg_path.write_text(text)
    # Keep the header's byte-length freshness check satisfied so the loader
    # reaches the decode (the corruption under test), not the staleness error.
    header = json.loads(path.read_text())
    for item in header["segments"]:
        if item["segment"] == seg_path.name:
            item["bytes"] = len(text.encode("utf-8"))
    path.write_text(json.dumps(header))
    with pytest.raises(ClusterStoreError, match="pool index length"):
        load_clusters(path, cases=problem.cases)


def test_load_rejects_version_1_stores(deriv_setup, tmp_path):
    """Stores from before the pool-index format (version 1) are rejected with
    a clear rebuild instruction rather than silently recomputed."""
    problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json")
    # Derive a v1 document from the v2 interchange export: same single-file
    # shape, minus the pool indexes version 2 added.
    v1 = tmp_path / "v1.json"
    export_clusters(path, v1)
    document = json.loads(v1.read_text())
    document["format_version"] = 1
    for cluster in document["clusters"]:
        cluster["expressions"] = [entry[:3] for entry in cluster["expressions"]]
    v1.write_text(json.dumps(document))
    with pytest.raises(ClusterStoreError, match="format version 1"):
        load_clusters(v1, cases=problem.cases)
    with pytest.raises(ClusterStoreError, match="rebuild the store"):
        Clara(cases=problem.cases).load_clusters(v1)


# -- retrieval vectors in the header: coverage reporting and degrade ------------------


def _strip_retrieval(path, *, keep_all_but_one=False):
    """Rewrite a store header without retrieval payloads (simulating a store
    built before the prefilter existed), or with one vector removed."""
    header = json.loads(path.read_text())
    if keep_all_but_one:
        for entry in header["segments"]:
            vectors = (entry.get("retrieval") or {}).get("vectors") or {}
            if vectors:
                vectors.pop(sorted(vectors)[0])
                break
    else:
        for entry in header["segments"]:
            entry.pop("retrieval", None)
    path.write_text(json.dumps(header, indent=2, sort_keys=True) + "\n")


def test_cli_cluster_info_reports_retrieval_coverage(deriv_setup, tmp_path, capsys):
    problem, _corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json", problem=problem.name)

    assert cli_main(["cluster", "info", str(path)]) == 0
    info = capsys.readouterr().out
    assert f"retrieval:      vectors for all {clara.cluster_count} clusters" in info
    assert "vectors=yes" in info and "vectors=no" not in info

    partial = tmp_path / "partial.json"
    clara.save_clusters(partial, problem=problem.name)
    _strip_retrieval(partial, keep_all_but_one=True)
    assert cli_main(["cluster", "info", str(partial)]) == 0
    info = capsys.readouterr().out
    assert (
        f"vectors for {clara.cluster_count - 1}/{clara.cluster_count} clusters" in info
    )
    assert "prefilter falls back where absent" in info

    _strip_retrieval(path)
    assert cli_main(["cluster", "info", str(path)]) == 0
    info = capsys.readouterr().out
    assert "retrieval:      no vectors (store predates retrieval" in info
    assert "vectors=no" in info and "vectors=yes" not in info


def test_pre_retrieval_store_serves_identically_with_fallback_counted(
    deriv_setup, tmp_path
):
    """A v3 header without retrieval payloads (built before this feature)
    must keep repairing exactly as an eager load does — the prefilter just
    turns itself off per lookup and counts ``fallbacks``."""
    problem, corpus, clara = deriv_setup
    path = clara.save_clusters(tmp_path / "clusters.json", problem=problem.name)
    _strip_retrieval(path)

    baseline = BatchRepairEngine(clara, workers=1).run(corpus.incorrect_sources)

    fresh = Clara(cases=problem.cases)
    degraded = BatchRepairEngine.from_store(path, fresh, workers=1).run(
        corpus.incorrect_sources
    )
    assert [_outcome_key(r) for r in degraded.records] == [
        _outcome_key(r) for r in baseline.records
    ]
    counters = fresh.caches.retrieval.as_dict()
    assert counters["fallbacks"] > 0
    assert counters["candidates_ranked"] == 0
    assert counters["matches_attempted"] == 0
