"""Tests for program matching (Fig. 4) and clustering (Def. 4.7)."""

from __future__ import annotations

import random

from repro.core.clustering import cluster_programs
from repro.core.inputs import InputCase
from repro.core.matching import find_matching, programs_match, structural_match
from repro.datasets.variants import rename_python_variables
from repro.frontend import parse_python_source


def test_structural_match_same_shape(paper_sources):
    c1 = parse_python_source(paper_sources["C1"])
    c2 = parse_python_source(paper_sources["C2"])
    mapping = structural_match(c1, c2)
    assert mapping is not None
    assert len(mapping) == len(c1.locations) == len(c2.locations)
    assert mapping[c1.init_loc] == c2.init_loc


def test_structural_match_rejects_different_loop_structure():
    no_loop = parse_python_source("def f(x):\n    return x\n")
    one_loop = parse_python_source(
        "def f(x):\n    s = 0\n    for i in range(x):\n        s += i\n    return s\n"
    )
    two_loops = parse_python_source(
        "def f(x):\n    s = 0\n    for i in range(x):\n        s += i\n"
        "    for j in range(x):\n        s += j\n    return s\n"
    )
    assert structural_match(no_loop, one_loop) is None
    assert structural_match(one_loop, two_loops) is None
    assert structural_match(one_loop, one_loop) is not None


def test_paper_c1_c2_match(paper_sources, deriv_cases):
    c1 = parse_python_source(paper_sources["C1"])
    c2 = parse_python_source(paper_sources["C2"])
    witness = find_matching(c2, c1, deriv_cases)
    assert witness is not None
    # The bijection from the paper: deriv ↦ result, i ↦ e, poly ↦ poly.
    assert witness.variable_map["deriv"] == "result"
    assert witness.variable_map["i"] == "e"
    assert witness.variable_map["poly"] == "poly"
    assert witness.variable_map["$ret"] == "$ret"


def test_incorrect_attempt_does_not_match_correct(paper_sources, deriv_cases):
    c1 = parse_python_source(paper_sources["C1"])
    i1 = parse_python_source(paper_sources["I1"])
    assert not programs_match(i1, c1, deriv_cases)


def test_matching_is_an_equivalence_on_renamed_programs(deriv_cases, paper_sources):
    rng = random.Random(4)
    original = paper_sources["C1"]
    renamed = rename_python_variables(original, rng)
    p = parse_python_source(original)
    q = parse_python_source(renamed)
    assert programs_match(p, p, deriv_cases)  # reflexive
    assert programs_match(q, p, deriv_cases)  # renamed programs match
    assert programs_match(p, q, deriv_cases)  # symmetric


def test_matching_distinguishes_semantically_different_programs():
    cases = [InputCase(args=(n,), expected_return=None) for n in (0, 1, 3, 5)]
    double = parse_python_source(
        "def f(n):\n    s = 0\n    for i in range(n):\n        s += 2\n    return s\n"
    )
    square = parse_python_source(
        "def f(n):\n    s = 0\n    for i in range(n):\n        s += i\n    return s\n"
    )
    assert not programs_match(double, square, cases)


# -- clustering --------------------------------------------------------------------


def test_clustering_groups_equivalent_solutions(paper_sources, deriv_cases):
    programs = [
        parse_python_source(paper_sources["C1"]),
        parse_python_source(paper_sources["C2"]),
    ]
    result = cluster_programs(programs, deriv_cases)
    assert result.cluster_count == 1
    assert result.clusters[0].size == 2


def test_clustering_separates_different_strategies(deriv_cases, paper_sources):
    guard_first = """
def computeDeriv(poly):
    if len(poly) <= 1:
        return [0.0]
    out = []
    for i in range(1, len(poly)):
        out.append(1.0*poly[i]*i)
    return out
"""
    programs = [
        parse_python_source(paper_sources["C1"]),
        parse_python_source(paper_sources["C2"]),
        parse_python_source(guard_first),
    ]
    result = cluster_programs(programs, deriv_cases)
    # The guard-first solution takes a different path on [] and [1.0] inputs
    # (it returns before the loop), so it cannot be dynamically equivalent.
    assert result.cluster_count == 2
    assert sorted(cluster.size for cluster in result.clusters) == [1, 2]


def test_cluster_expression_pools_collect_variants(paper_sources, deriv_cases):
    programs = [
        parse_python_source(paper_sources["C1"]),
        parse_python_source(paper_sources["C2"]),
    ]
    result = cluster_programs(programs, deriv_cases)
    cluster = result.clusters[0]
    rep = cluster.representative
    # Find the loop-body location and the accumulator variable of the
    # representative; the pool must contain at least two distinct expressions
    # (append-style from C1 and list-concatenation style from C2), all over
    # the representative's variables.
    pools = [
        (key, pool)
        for key, pool in cluster.expressions.items()
        if key[1] == "result" and len(pool) >= 2
    ]
    assert pools, "expected a pool with both expression styles"
    for _key, pool in pools:
        for entry in pools[0][1]:
            assert entry.expr.variables() <= set(rep.variables)


def test_clustering_reports_failures_gracefully(deriv_cases):
    # A program whose execution always diverges still ends up in a cluster of
    # its own (aborted traces are compared like any other), never crashing.
    diverging = parse_python_source(
        "def computeDeriv(poly):\n    while True:\n        poly = poly\n    return poly\n"
    )
    result = cluster_programs([diverging], deriv_cases)
    assert result.cluster_count == 1
    assert not result.failures
