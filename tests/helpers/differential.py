"""Field-identity assertions shared by the on-vs-off differential tests.

Several fast-path features (compiled execution, ILP solve memoization,
lazy segment paging, retrieval prefiltering) promise the same contract:
with the optimisation on or off, repair outcomes are *field-identical* —
same status, same repair fields, same feedback text.  These helpers give
every such test one comparison vocabulary instead of a per-file copy.
"""

from __future__ import annotations


def repair_fields(repair):
    """Comparable projection of a ``Repair`` (``None`` passes through).

    ``comparable_fields()`` excludes volatile members (timings, cache
    handles) so two repairs computed along different fast paths compare
    equal exactly when they are semantically the same repair.
    """
    return repair.comparable_fields() if repair is not None else None


def outcome_fields(outcome):
    """Comparable projection of a pipeline ``RepairOutcome``.

    Captures everything user-visible — status, repair fields, rendered
    feedback text, and the failure detail — but not ``elapsed``.
    """
    return (
        outcome.status,
        repair_fields(outcome.repair),
        outcome.feedback.text() if outcome.feedback is not None else None,
        outcome.detail,
    )


def report_rows(report):
    """Comparable projection of a ``BatchReport``: one row per record.

    Rows carry the user-visible fields of each record (status, repair
    cost metrics, feedback) and drop wall-clock timings.
    """
    return [
        (record.status, record.cost, record.relative_size, record.num_modified, record.feedback)
        for record in report.records
    ]


def assert_repairs_field_identical(actual, baseline):
    """Assert two sequences of repairs are pairwise field-identical."""
    assert [repair_fields(r) for r in actual] == [repair_fields(r) for r in baseline]


def assert_outcomes_field_identical(actual, baseline):
    """Assert two sequences of ``RepairOutcome`` are pairwise field-identical."""
    assert [outcome_fields(o) for o in actual] == [outcome_fields(o) for o in baseline]
