"""Shared helpers for the test suite.

``tests/`` itself has no ``__init__.py`` (pytest rootdir-inserts it on
``sys.path``), so tests import these as ``from helpers.differential
import ...``.
"""
