"""Tests for the mini-C front-end: lexer, parser, lowering, execution."""

from __future__ import annotations

import pytest

from repro.frontend import ParseError, UnsupportedFeatureError
from repro.frontend.c import parse_c, parse_c_source, tokenize
from repro.frontend.c.cast import CBinary, CCall, CFor, CIf, CWhile
from repro.interpreter import execute, printed_output
from repro.model.expr import VAR_STDIN


def _output(source: str, stdin: list) -> str:
    program = parse_c_source(source)
    return printed_output(execute(program, {VAR_STDIN: list(stdin)}))


# -- lexer ------------------------------------------------------------------------


def test_tokenize_basic_tokens():
    tokens = tokenize('int x = 10; // comment\nprintf("hi\\n");')
    kinds = [(t.kind, t.value) for t in tokens]
    assert ("keyword", "int") in kinds
    assert ("ident", "x") in kinds
    assert ("number", "10") in kinds
    assert ("string", "hi\n") in kinds
    assert kinds[-1] == ("eof", "")


def test_tokenize_operators_and_comments():
    tokens = tokenize("a <= b && c != d /* block\ncomment */ e++")
    values = [t.value for t in tokens if t.kind == "op"]
    assert "<=" in values and "&&" in values and "!=" in values and "++" in values


def test_tokenize_preprocessor_skipped_and_char_literal():
    tokens = tokenize("#include <stdio.h>\nchar c = 'x';")
    assert all(t.value != "include" for t in tokens if t.kind == "ident")
    assert any(t.kind == "char" and t.value == "x" for t in tokens)


def test_tokenize_errors():
    with pytest.raises(ParseError):
        tokenize('"unterminated')
    with pytest.raises(ParseError):
        tokenize("int x = @;")


# -- parser -----------------------------------------------------------------------


def test_parse_function_and_statements():
    unit = parse_c(
        """
        int main() {
            int a = 1, b;
            b = a + 2;
            if (a < b) { a = b; } else a = 0;
            while (a > 0) a--;
            for (b = 0; b < 3; b++) { a = a + b; }
            return a;
        }
        """
    )
    assert len(unit.functions) == 1
    main = unit.functions[0]
    assert main.name == "main"
    kinds = [type(statement) for statement in main.body]
    assert CIf in kinds and CWhile in kinds and CFor in kinds


def test_parse_expression_precedence():
    unit = parse_c("int main() { int x = 1 + 2 * 3 < 10 && 1; return x; }")
    declaration = unit.functions[0].body[0]
    init = declaration.declarators[0].init
    assert isinstance(init, CBinary) and init.op == "&&"


def test_parse_scanf_address_of():
    unit = parse_c('int main() { int a; scanf("%d", &a); return 0; }')
    call = unit.functions[0].body[1].expr
    assert isinstance(call, CCall) and call.name == "scanf"
    assert call.address_of == [False, True]


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_c("int main() { int a = ; }")
    with pytest.raises(ParseError):
        parse_c("")
    with pytest.raises(UnsupportedFeatureError):
        parse_c("int main() { int a[10]; return 0; }")


# -- lowering + execution -----------------------------------------------------------


def test_simple_io_roundtrip():
    source = r"""
    #include <stdio.h>
    int main() {
        int a, b;
        scanf("%d %d", &a, &b);
        printf("%d\n", a + b);
        return 0;
    }
    """
    assert _output(source, [3, 4]) == "7\n"


def test_integer_division_and_modulo():
    source = r"""
    int main() {
        int n;
        scanf("%d", &n);
        printf("%d %d\n", n / 10, n % 10);
        return 0;
    }
    """
    assert _output(source, [137]) == "13 7\n"


def test_float_division():
    source = r"""
    int main() {
        float x = 7;
        printf("%f\n", x / 2);
        return 0;
    }
    """
    assert _output(source, []).startswith("3.5")


def test_for_loop_lowering_and_ternary():
    source = r"""
    int main() {
        int i, total = 0;
        for (i = 1; i <= 5; i++) {
            total += (i % 2 == 0) ? i : 0;
        }
        printf("%d\n", total);
        return 0;
    }
    """
    assert _output(source, []) == "6\n"


def test_do_while_lowering():
    source = r"""
    int main() {
        int n = 3, steps = 0;
        do {
            n = n - 1;
            steps++;
        } while (n > 0);
        printf("%d\n", steps);
        return 0;
    }
    """
    assert _output(source, []) == "3\n"


def test_break_in_while():
    source = r"""
    int main() {
        int i = 0;
        while (1) {
            if (i == 4) break;
            i++;
        }
        printf("%d\n", i);
        return 0;
    }
    """
    assert _output(source, []) == "4\n"


def test_char_output_and_percent_c():
    source = r"""
    int main() {
        printf("%c%c\n", '*', '*');
        return 0;
    }
    """
    assert _output(source, []) == "**\n"


def test_unsupported_continue_in_for():
    source = "int main() { int i; for (i = 0; i < 3; i++) { continue; } return 0; }"
    with pytest.raises(UnsupportedFeatureError):
        parse_c_source(source)


# -- the six user-study problems execute correctly ----------------------------------


@pytest.mark.parametrize(
    "problem_name",
    [
        "fibonacci",
        "special_number",
        "reverse_difference",
        "factorial_interval",
        "trapezoid",
        "rhombus",
    ],
)
def test_user_study_reference_solutions_are_correct(problem_name):
    from repro.core.inputs import is_correct
    from repro.datasets import get_problem

    problem = get_problem(problem_name)
    for source in problem.reference_sources:
        program = parse_c_source(source)
        assert is_correct(program, problem.cases), f"reference failed: {problem_name}"
