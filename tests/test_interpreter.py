"""Tests for the value domain, operation library, evaluator and executor."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.interpreter.evaluator import evaluate, truthy
from repro.interpreter.executor import ExecutionLimits, execute, printed_output, returned_value
from repro.interpreter.libfuncs import LIBRARY, lookup
from repro.interpreter.values import UNDEF, freeze_value, is_undef, values_equal
from repro.model.expr import Const, Op, VAR_COND, VAR_OUT, VAR_RET, Var
from repro.model.program import Program


# -- values ----------------------------------------------------------------------


def test_values_equal_basic():
    assert values_equal(1, 1)
    assert values_equal(1.0, 1.0000000001)
    assert not values_equal(1, 2)
    assert values_equal([1, 2], [1, 2])
    assert not values_equal([1, 2], (1, 2))
    assert not values_equal(True, 1)
    assert values_equal(UNDEF, UNDEF)
    assert not values_equal(UNDEF, 0)
    assert values_equal("ab", "ab")


def test_freeze_value_copies_lists():
    original = [[1, 2], 3]
    frozen = freeze_value(original)
    original[0].append(99)
    assert frozen == [[1, 2], 3]


def test_undef_is_falsy_singleton():
    assert not UNDEF
    assert is_undef(UNDEF)
    assert UNDEF == UNDEF


# -- library functions -----------------------------------------------------------


def test_arithmetic_ops():
    assert LIBRARY["Add"](2, 3) == 5
    assert LIBRARY["Add"]([1], [2]) == [1, 2]
    assert LIBRARY["Add"]((1,), (2,)) == (1, 2)
    assert LIBRARY["Add"]("a", "b") == "ab"
    assert is_undef(LIBRARY["Add"]([1], 2))
    assert LIBRARY["Sub"](5, 3) == 2
    assert LIBRARY["Mult"]("ab", 2) == "abab"
    assert is_undef(LIBRARY["Div"](1, 0))
    assert LIBRARY["FloorDiv"](7, 2) == 3
    assert LIBRARY["IntDiv"](-7, 2) == -3  # C-style truncation
    assert LIBRARY["Mod"](7, 3) == 1
    assert LIBRARY["CMod"](-7, 3) == -1  # C-style remainder
    assert LIBRARY["Pow"](2, 10) == 1024
    assert LIBRARY["USub"](4) == -4


def test_comparisons_and_equality():
    assert LIBRARY["Lt"](1, 2) is True
    assert LIBRARY["GtE"](2, 2) is True
    assert LIBRARY["Eq"]([1.0], [1.0]) is True
    assert LIBRARY["NotEq"](1, 2) is True
    assert is_undef(LIBRARY["Lt"](1, "a"))


def test_sequence_ops():
    assert LIBRARY["len"]([1, 2, 3]) == 3
    assert LIBRARY["range"](3) == [0, 1, 2]
    assert LIBRARY["range"](1, 4) == [1, 2, 3]
    assert LIBRARY["range"](0, 6, 2) == [0, 2, 4]
    assert is_undef(LIBRARY["range"](0, 5, 0))
    assert LIBRARY["ListHead"]([7, 8]) == 7
    assert LIBRARY["ListTail"]([7, 8]) == [8]
    assert is_undef(LIBRARY["ListHead"]([]))
    assert LIBRARY["append"]([1], 2) == [1, 2]
    assert LIBRARY["GetElement"]([1, 2, 3], 1) == 2
    assert is_undef(LIBRARY["GetElement"]([1, 2, 3], 7))
    assert LIBRARY["AssignElement"]([1, 2, 3], 1, 9) == [1, 9, 3]
    assert is_undef(LIBRARY["AssignElement"]([1], 5, 9))
    assert LIBRARY["Slice"]([1, 2, 3, 4], 1, 3) == [2, 3]
    assert LIBRARY["TupleInit"](1, 2) == (1, 2)
    assert LIBRARY["sum"]([1, 2, 3]) == 6
    assert LIBRARY["reversed"]([1, 2]) == [2, 1]


def test_conversions_and_formatting():
    assert LIBRARY["float"](3) == 3.0
    assert LIBRARY["int"]("12") == 12
    assert is_undef(LIBRARY["int"]("abc"))
    assert LIBRARY["str"](True) == "True"
    assert LIBRARY["StrConcat"]("a", 1, "b") == "a1b"
    assert LIBRARY["StrFormat"]("%d-%d\n", 3, 4) == "3-4\n"
    assert LIBRARY["StrFormat"]("%s!", "hi") == "hi!"
    assert LIBRARY["StrFormat"]("%c", 65) == "A"
    assert is_undef(LIBRARY["StrFormat"]("%d", "oops"))
    assert is_undef(LIBRARY["StrFormat"]("%d %d", 1))


def test_lookup_unknown_returns_none():
    assert lookup("definitely-not-an-op") is None


# -- evaluator --------------------------------------------------------------------


def test_evaluate_variables_and_constants():
    assert evaluate(Var("x"), {"x": 5}) == 5
    assert is_undef(evaluate(Var("missing"), {}))
    assert evaluate(Const([1, 2]), {}) == [1, 2]


def test_evaluate_short_circuit_and_or():
    # And returns the deciding operand, like Python.
    assert evaluate(Op("And", Const(0), Var("boom")), {}) == 0
    assert evaluate(Op("Or", Const([]), Const([0.0])), {}) == [0.0]
    # The classic `result or [0.0]` idiom from Fig. 2(d).
    assert evaluate(Op("Or", Var("r"), Const([0.0])), {"r": [7.6]}) == [7.6]
    assert evaluate(Op("Or", Var("r"), Const([0.0])), {"r": []}) == [0.0]


def test_evaluate_ite_lazy():
    expr = Op("ite", Var("c"), Const(1), Op("Div", Const(1), Const(0)))
    assert evaluate(expr, {"c": True}) == 1
    assert is_undef(evaluate(expr, {"c": False}))


def test_evaluate_unknown_op_and_error_propagation():
    assert is_undef(evaluate(Op("Method_length", Var("x")), {"x": 3}))
    assert is_undef(evaluate(Op("Add", Var("x"), Const(1)), {}))  # undef operand
    assert truthy(1) and not truthy(UNDEF) and not truthy([])


@given(st.integers(-50, 50), st.integers(-50, 50))
def test_evaluate_matches_python_arithmetic(a, b):
    memory = {"a": a, "b": b}
    assert evaluate(Op("Add", Var("a"), Var("b")), memory) == a + b
    assert evaluate(Op("Mult", Var("a"), Var("b")), memory) == a * b
    assert evaluate(Op("Lt", Var("a"), Var("b")), memory) == (a < b)


# -- executor ----------------------------------------------------------------------


def _straight_line_program() -> Program:
    program = Program("f", params=["x"])
    loc = program.add_location("entry")
    program.set_update(loc.loc_id, "y", Op("Add", Var("x"), Const(1)))
    program.set_update(loc.loc_id, VAR_RET, Op("Mult", Var("x"), Const(2)))
    program.set_successor(loc.loc_id, None, None)
    return program


def test_execute_straight_line():
    program = _straight_line_program()
    trace = execute(program, {"x": 10})
    assert len(trace) == 1
    assert trace[0].pre["x"] == 10
    assert trace[0].post["y"] == 11
    assert returned_value(trace) == 20


def _counting_loop_program(limit_expr) -> Program:
    program = Program("count", params=["n"])
    entry = program.add_location("entry")
    cond = program.add_location("loop-cond")
    body = program.add_location("loop-body")
    after = program.add_location("after-loop")
    program.set_update(entry.loc_id, "i", Const(0))
    program.set_update(cond.loc_id, VAR_COND, limit_expr)
    program.set_update(body.loc_id, "i", Op("Add", Var("i"), Const(1)))
    program.set_update(after.loc_id, VAR_RET, Var("i"))
    program.set_successor(entry.loc_id, cond.loc_id, cond.loc_id)
    program.set_successor(cond.loc_id, body.loc_id, after.loc_id)
    program.set_successor(body.loc_id, cond.loc_id, cond.loc_id)
    program.set_successor(after.loc_id, None, None)
    return program


def test_execute_loop_and_trace_shape():
    program = _counting_loop_program(Op("Lt", Var("i"), Var("n")))
    trace = execute(program, {"n": 3})
    assert returned_value(trace) == 3
    assert not trace.aborted
    # entry, then (cond, body) * 3, cond, after
    assert trace.location_sequence[0] == 0
    assert trace.location_sequence[-1] == 3


def test_execute_infinite_loop_hits_step_limit():
    program = _counting_loop_program(Const(True))
    trace = execute(program, {"n": 3}, ExecutionLimits(max_steps=50))
    assert trace.aborted
    assert len(trace) == 50


def test_execute_undefined_condition_takes_false_branch():
    program = _counting_loop_program(Op("Lt", Var("i"), Var("missing")))
    trace = execute(program, {"n": 3})
    assert not trace.aborted
    assert returned_value(trace) == 0


def test_printed_output_accumulates():
    program = Program("main", params=[])
    loc = program.add_location("entry")
    program.set_update(
        loc.loc_id, VAR_OUT, Op("StrConcat", Var(VAR_OUT), Const("hello\n"))
    )
    program.set_successor(loc.loc_id, None, None)
    trace = execute(program, {})
    assert printed_output(trace) == "hello\n"
