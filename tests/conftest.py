"""Shared test fixtures.

The ``src`` directory is added to ``sys.path`` so the suite also runs in
environments where the editable install is not available (the offline CI
image lacks the ``wheel`` package needed by PEP 517 editable installs).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.inputs import InputCase  # noqa: E402


# The paper's running example (Fig. 2): correct solutions C1/C2 and incorrect
# attempts I1/I2 of the ``derivatives`` assignment.

C1 = """
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
"""

C2 = """
def computeDeriv(poly):
    deriv = []
    for i in range(1, len(poly)):
        deriv += [float(i)*poly[i]]
    if len(deriv) == 0:
        return [0.0]
    return deriv
"""

I1 = """
def computeDeriv(poly):
    new = []
    for i in range(1, len(poly)):
        new.append(float(i*poly[i]))
    if new == []:
        return 0.0
    return new
"""

I2 = """
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i] = float(i*poly[i])
    return result
"""


def _derivative(poly):
    out = [float(i * poly[i]) for i in range(1, len(poly))]
    return out if out else [0.0]


@pytest.fixture(scope="session")
def deriv_cases():
    inputs = [[6.3, 7.6, 12.14], [], [1.0], [1.0, 2.0, 3.0, 4.0], [0.0, 5.0]]
    return [
        InputCase(args=(list(p),), expected_return=_derivative(p)) for p in inputs
    ]


@pytest.fixture(scope="session")
def paper_sources():
    return {"C1": C1, "C2": C2, "I1": I1, "I2": I2}
