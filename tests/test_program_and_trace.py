"""Unit tests for the Program/Location/Trace containers and feedback rendering."""

from __future__ import annotations

from repro.core.feedback import describe_action
from repro.core.repair import RepairAction
from repro.frontend import parse_python_source
from repro.interpreter import execute
from repro.model.expr import Const, Op, VAR_RET, Var
from repro.model.program import Program
from repro.model.trace import Trace, TraceStep, project


# -- Program ----------------------------------------------------------------------


def _two_location_program() -> Program:
    program = Program("demo", params=["x"])
    first = program.add_location("entry", line=1)
    second = program.add_location("after", line=3)
    program.set_update(first.loc_id, "y", Op("Add", Var("x"), Const(1)))
    program.set_update(second.loc_id, VAR_RET, Var("y"))
    program.set_successor(first.loc_id, second.loc_id, second.loc_id)
    program.set_successor(second.loc_id, None, None)
    return program


def test_program_accessors():
    program = _two_location_program()
    assert program.init_loc == 0
    assert program.location_ids() == [0, 1]
    assert program.update_for(0, "y") == Op("Add", Var("x"), Const(1))
    # implicit identity update for unassigned variables
    assert program.update_for(1, "x") == Var("x")
    assert set(program.variables) >= {"x", "y", VAR_RET}
    assert program.user_variables == ["x", "y"]
    assert not program.is_branching(0)
    assert program.successor(1, True) is None


def test_program_ast_size_counts_only_explicit_updates():
    program = _two_location_program()
    # y := x + 1 has 3 nodes, $ret := y has 1 node
    assert program.ast_size() == 4
    assert list(program.iter_updates()) == [
        (0, "y", Op("Add", Var("x"), Const(1))),
        (1, VAR_RET, Var("y")),
    ]


def test_program_copy_is_independent():
    program = _two_location_program()
    clone = program.copy()
    clone.set_update(0, "y", Const(0))
    assert program.update_for(0, "y") == Op("Add", Var("x"), Const(1))
    assert clone.update_for(0, "y") == Const(0)


def test_program_rename_variables():
    program = _two_location_program()
    renamed = program.rename_variables({"x": "n", "y": "m"})
    assert renamed.params == ["n"]
    assert renamed.update_for(0, "m") == Op("Add", Var("n"), Const(1))
    # the original is untouched
    assert program.params == ["x"]


def test_program_describe_mentions_updates():
    text = _two_location_program().describe()
    assert "y := x + 1" in text
    assert "loc 0" in text and "end" in text


def test_prune_unread_flags_keeps_observables():
    program = _two_location_program()
    program.set_update(0, "$brk1", Const(False))
    program.prune_unread_flags()
    assert "$brk1" not in program.locations[0].updates
    assert VAR_RET in program.locations[1].updates


# -- Trace ------------------------------------------------------------------------


def test_trace_projection_and_final_memory():
    steps = [
        TraceStep(loc_id=0, pre={"x": 1}, post={"x": 1, "y": 2}),
        TraceStep(loc_id=1, pre={"x": 1, "y": 2}, post={"x": 1, "y": 2, "$ret": 2}),
    ]
    trace = Trace(steps)
    assert len(trace) == 2
    assert trace.location_sequence == (0, 1)
    assert project(trace, "y") == (2, 2)
    assert project(trace, "missing") == (None, None)
    assert trace.final_value("$ret") == 2
    assert trace.steps_at(1) == [steps[1]]
    assert not trace.aborted


def test_empty_trace():
    trace = Trace([])
    assert trace.final_memory() == {}
    assert trace.final_value("x", default="d") == "d"


def test_trace_steps_record_pre_and_post_states():
    program = parse_python_source(
        "def f(n):\n    s = 0\n    for i in range(n):\n        s += i\n    return s\n"
    )
    trace = execute(program, {"n": 2})
    body_steps = [s for s in trace if program.locations[s.loc_id].name == "loop-body"]
    assert len(body_steps) == 2
    assert body_steps[0].pre["s"] == 0
    assert body_steps[0].post["s"] == 0  # s += i with i = 0
    assert body_steps[1].post["s"] == 1


# -- feedback action rendering --------------------------------------------------------


def _action(kind: str, **kwargs) -> RepairAction:
    defaults = dict(
        kind=kind,
        loc_id=0,
        var="x",
        old_expr=Var("x"),
        new_expr=Op("Add", Var("x"), Const(1)),
        cost=1,
        rep_var="y",
        line=4,
        location_name="loop-body",
    )
    defaults.update(kwargs)
    return RepairAction(**defaults)


def test_describe_modify_action():
    item = describe_action(_action("modify"))
    assert "change" in item.message and "x + 1" in item.message
    assert "line 4" in item.message and "loop body" in item.message


def test_describe_add_and_delete_actions():
    add = describe_action(_action("add", var="new_result", old_expr=None))
    assert "new variable" in add.message and "new_result" in add.message
    delete = describe_action(_action("delete", new_expr=None))
    assert "Delete" in delete.message


def test_describe_remove_assignment_and_special_variables():
    remove = describe_action(_action("remove-assignment"))
    assert "Remove the assignment" in remove.message
    ret = describe_action(_action("modify", var="$ret", location_name="after-loop"))
    assert "return value" in ret.message and "after the loop" in ret.message
    cond = describe_action(_action("modify", var="$cond", location_name="loop-cond"))
    assert "condition" in cond.message
    out = describe_action(_action("modify", var="$out", location_name="entry"))
    assert "printed output" in out.message
    iterator = describe_action(_action("modify", var="$iter1", location_name="entry"))
    assert "iterator" in iterator.message


def test_describe_missing_assignment_added():
    item = describe_action(_action("modify", old_expr=None))
    assert item.message.startswith("Add an assignment")
