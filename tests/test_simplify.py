"""Tests for the expression simplifier, including a semantics-preservation property."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.interpreter.evaluator import evaluate
from repro.interpreter.values import values_equal
from repro.model.expr import Const, Op, Var
from repro.model.simplify import simplify


def test_not_constant_folding():
    assert simplify(Op("Not", Const(True))) == Const(False)
    # Double negation folds only for operands known to be boolean (Python's
    # `not not 0` is False, not 0, so Var operands must stay untouched).
    boolean = Op("Lt", Var("a"), Const(1))
    assert simplify(Op("Not", Op("Not", boolean))) == boolean
    assert simplify(Op("Not", Op("Not", Var("a")))) == Op("Not", Op("Not", Var("a")))


def test_not_of_boolean_ite():
    expr = Op("Not", Op("ite", Var("c"), Const(True), Const(False)))
    assert simplify(expr) == Op("Not", Var("c"))
    boolean_cond = Op("Eq", Var("c"), Const(0))
    expr = Op("Not", Op("ite", boolean_cond, Const(False), Const(True)))
    assert simplify(expr) == boolean_cond


def test_and_or_folding():
    boolean = Op("Gt", Var("a"), Const(0))
    assert simplify(Op("And", Const(True), Var("a"))) == Var("a")
    assert simplify(Op("And", boolean, Const(False))) == Const(False)
    assert simplify(Op("And", Const(False), Var("a"))) == Const(False)
    assert simplify(Op("Or", Const(False), Var("a"))) == Var("a")
    assert simplify(Op("Or", boolean, Const(True))) == Const(True)
    assert simplify(Op("Or", Const(True), Var("a"))) == Const(True)
    # Non-boolean operands are left alone (value-preservation).
    assert simplify(Op("And", Var("a"), Const(False))) == Op("And", Var("a"), Const(False))


def test_ite_folding():
    assert simplify(Op("ite", Const(True), Var("a"), Var("b"))) == Var("a")
    assert simplify(Op("ite", Const(False), Var("a"), Var("b"))) == Var("b")
    assert simplify(Op("ite", Var("c"), Var("a"), Var("a"))) == Var("a")


def test_nested_ite_same_condition_absorbed():
    inner = Op("ite", Var("c"), Var("x"), Var("y"))
    expr = Op("ite", Var("c"), inner, Var("z"))
    assert simplify(expr) == Op("ite", Var("c"), Var("x"), Var("z"))


def test_ite_not_condition_swaps_branches():
    expr = Op("ite", Op("Not", Var("c")), Var("a"), Var("b"))
    assert simplify(expr) == Op("ite", Var("c"), Var("b"), Var("a"))


def test_guard_pattern_from_frontend_folds_to_paper_form():
    # ite(Not(ite(c, True, False)), new, ite(c, [0.0], ret))  ==>  ite(c, [0.0], new)
    cond = Op("Eq", Var("new"), Const([]))
    expr = Op(
        "ite",
        Op("Not", Op("ite", cond, Const(True), Const(False))),
        Var("new"),
        Op("ite", cond, Const([0.0]), Var("$ret")),
    )
    assert simplify(expr) == Op("ite", cond, Const([0.0]), Var("new"))


# -- semantics preservation ------------------------------------------------------

_names = ["a", "b", "c"]


def _exprs():
    leaf = st.one_of(
        st.sampled_from(_names).map(Var),
        st.integers(-3, 3).map(Const),
        st.booleans().map(Const),
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(st.sampled_from(["And", "Or", "Eq", "Lt", "Add"]), children, children).map(
                lambda t: Op(t[0], t[1], t[2])
            ),
            children.map(lambda e: Op("Not", e)),
            st.tuples(children, children, children).map(lambda t: Op("ite", *t)),
        ),
        max_leaves=10,
    )


@given(
    _exprs(),
    st.fixed_dictionaries({name: st.one_of(st.integers(-3, 3), st.booleans()) for name in _names}),
)
def test_simplify_preserves_evaluation(expr, memory):
    original = evaluate(expr, memory)
    simplified = evaluate(simplify(expr), memory)
    assert values_equal(original, simplified)


@given(_exprs())
def test_simplify_never_grows(expr):
    assert simplify(expr).size() <= expr.size()


@given(_exprs())
def test_simplify_is_idempotent(expr):
    once = simplify(expr)
    assert simplify(once) == once
