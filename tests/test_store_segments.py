"""The indexed (format v3) store: lazy segment paging, v2 interchange
round-trips and staleness detection.

The derivatives corpus generator normalises every solution strategy into
one CFG shape, so these tests add a hand-written *two-loop* correct
solution whose skeleton differs — that second skeleton group is what makes
segment skips observable (repairing an attempt of one shape must never
page the other shape's segments).
"""

from __future__ import annotations

import json

import pytest

from helpers.differential import report_rows

from repro import Clara
from repro.clusterstore import (
    ClusterStore,
    ClusterStoreError,
    export_clusters,
    import_clusters,
    load_clusters,
    open_lazy,
)
from repro.clusterstore.segments import segment_dir
from repro.datasets import generate_corpus, get_problem
from repro.engine import BatchRepairEngine
from repro.service import RepairService

#: A correct strategy with a CFG skeleton the generated pool never takes:
#: two sequential loops (scale everything, then shift off the constant).
TWO_LOOP = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

#: Same two-loop skeleton, wrong scaling — repairable only against the
#: TWO_LOOP cluster's segment.
TWO_LOOP_BROKEN = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

#: An attempt in the generated pool's (single-loop) shape: repairing it
#: must skip the two-loop segment.
FAMILY_ATTEMPT = (
    "def computeDeriv(poly):\n"
    "    result = []\n"
    "    for i in range(1, len(poly)):\n"
    "        result.append(float(poly[i]))\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)


@pytest.fixture(scope="module")
def spec():
    return get_problem("derivatives")


@pytest.fixture(scope="module")
def corpus(spec):
    return generate_corpus(spec, 10, 4, seed=3)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, spec, corpus):
    path = tmp_path_factory.mktemp("segments") / "derivatives.json"
    clara = Clara(cases=spec.cases, language=spec.language, entry=spec.entry)
    clara.add_correct_sources(list(corpus.correct_sources) + [TWO_LOOP])
    clara.save_clusters(path, problem="derivatives")
    return path


def _store_state(path):
    header = json.loads(path.read_text())
    segments = {
        entry.name: entry.read_bytes() for entry in sorted(segment_dir(path).iterdir())
    }
    return header, segments


def _fresh(spec):
    return Clara(cases=spec.cases, language=spec.language, entry=spec.entry)


# -- lazy open and paging counters ----------------------------------------------------


def test_open_lazy_reads_only_the_header(store_path):
    source = open_lazy(store_path)
    counters = source.paging_counters()
    assert counters["segments_total"] >= 2
    assert counters["segments_loaded"] == 0
    assert counters["segments_skipped"] == counters["segments_total"]
    assert counters["clusters_loaded"] == 0
    # Header metadata is served without touching a segment.
    assert source.cluster_count == 5
    assert source.total_members() == 11
    assert source.paging_counters()["segments_loaded"] == 0


def test_repairing_one_attempt_pages_only_its_skeleton_segment(spec, store_path):
    clara = _fresh(spec)
    engine = BatchRepairEngine.from_store(store_path, clara, workers=1)
    assert clara.store_paging()["segments_loaded"] == 0

    record = engine.run([TWO_LOOP_BROKEN]).records[0]
    assert record.status == "repaired"
    counters = clara.store_paging()
    # The attempt's CFG skeleton matches exactly one segment; every other
    # segment is provably unmatchable and must stay on disk.
    assert counters["segments_loaded"] == 1
    assert counters["segments_skipped"] == counters["segments_total"] - 1
    assert counters["clusters_loaded"] == 1


def test_family_attempt_skips_the_two_loop_segment(spec, store_path):
    clara = _fresh(spec)
    engine = BatchRepairEngine.from_store(store_path, clara, workers=1)
    record = engine.run([FAMILY_ATTEMPT]).records[0]
    assert record.status == "repaired"
    counters = clara.store_paging()
    assert counters["segments_skipped"] >= 1
    assert counters["segments_loaded"] == counters["segments_total"] - 1


def test_lazy_and_eager_loads_repair_identically(spec, corpus, store_path):
    def rows(engine):
        return report_rows(engine.run(list(corpus.incorrect_sources) + [TWO_LOOP_BROKEN]))

    lazy = BatchRepairEngine.from_store(store_path, _fresh(spec), workers=1)
    eager = BatchRepairEngine.from_store(store_path, _fresh(spec), workers=1, lazy=False)
    assert rows(lazy) == rows(eager)
    assert eager.clara.store_paging() is None  # eager pipelines have no pager


def test_lazy_pipeline_refuses_in_memory_cluster_registration(spec, store_path):
    clara = _fresh(spec)
    clara.attach_lazy_clusters(open_lazy(store_path, cases=spec.cases))
    with pytest.raises(ValueError, match="lazily paged store"):
        clara.add_correct_sources([TWO_LOOP])
    with pytest.raises(ValueError, match="no clusters registered"):
        clara.attach_lazy_clusters(open_lazy(store_path, cases=spec.cases))


# -- incremental updates through the indexed open -------------------------------------


def test_open_indexed_join_pages_only_the_joined_bucket(
    tmp_path, spec, corpus, store_path
):
    inc_path = tmp_path / "inc.json"
    full_path = tmp_path / "full.json"
    base = list(corpus.correct_sources) + [TWO_LOOP]
    clara = _fresh(spec)
    clara.add_correct_sources(base)
    clara.save_clusters(inc_path, problem="derivatives")

    store = ClusterStore.open_indexed(inc_path, spec.cases)
    assert store.indexed
    assert store.paging_counters()["segments_loaded"] == 0
    # Joining an existing cluster needs that fingerprint's bucket only.
    outcome = store.add_correct_source(corpus.correct_sources[0])
    assert outcome.status == "joined"
    assert store.paging_counters()["segments_loaded"] == 1
    store.save()

    rebuilt = _fresh(spec)
    rebuilt.add_correct_sources(base + [corpus.correct_sources[0]])
    rebuilt.save_clusters(full_path, problem="derivatives")

    inc_doc, inc_segments = _store_state(inc_path)
    full_doc, full_segments = _store_state(full_path)
    assert inc_doc.pop("revision") == 1
    assert full_doc.pop("revision") == 0
    assert inc_doc == full_doc
    assert inc_segments == full_segments


def test_open_indexed_create_matches_full_rebuild(tmp_path, spec, corpus):
    inc_path = tmp_path / "inc.json"
    full_path = tmp_path / "full.json"
    clara = _fresh(spec)
    clara.add_correct_sources(corpus.correct_sources)
    clara.save_clusters(inc_path, problem="derivatives")

    store = ClusterStore.open_indexed(inc_path, spec.cases)
    outcome = store.add_correct_source(TWO_LOOP)
    assert outcome.status == "created"
    store.save()

    rebuilt = _fresh(spec)
    rebuilt.add_correct_sources(list(corpus.correct_sources) + [TWO_LOOP])
    rebuilt.save_clusters(full_path, problem="derivatives")

    inc_doc, inc_segments = _store_state(inc_path)
    full_doc, full_segments = _store_state(full_path)
    inc_doc.pop("revision"), full_doc.pop("revision")
    assert inc_doc == full_doc
    assert inc_segments == full_segments


# -- v2 interchange -------------------------------------------------------------------


def test_v2_migration_round_trip_is_byte_identical(tmp_path, store_path):
    first_v2 = tmp_path / "first.json"
    export_clusters(store_path, first_v2)

    migrated = tmp_path / "migrated.json"
    import_clusters(first_v2, migrated)
    assert _store_state(migrated) == _store_state(store_path)

    second_v2 = tmp_path / "second.json"
    export_clusters(migrated, second_v2)
    assert second_v2.read_bytes() == first_v2.read_bytes()


def test_in_place_migration_upgrades_a_v2_file(tmp_path, spec, store_path):
    v2 = tmp_path / "store.json"
    export_clusters(store_path, v2)
    import_clusters(v2, v2)
    stored = load_clusters(v2, cases=spec.cases)
    assert len(stored.clusters) == 5


def test_loading_a_v2_store_names_the_import_migration(tmp_path, spec, store_path):
    v2 = tmp_path / "old.json"
    export_clusters(store_path, v2)
    with pytest.raises(ClusterStoreError, match="cluster import"):
        load_clusters(v2, cases=spec.cases)


def test_import_rejects_a_v3_header(tmp_path, store_path):
    with pytest.raises(ClusterStoreError, match="already a format-3 store"):
        import_clusters(store_path, tmp_path / "out.json")


# -- staleness detection --------------------------------------------------------------


def test_rewritten_segment_is_detected_not_mixed(tmp_path, spec, store_path):
    import shutil

    own = tmp_path / "store.json"
    shutil.copy(store_path, own)
    shutil.copytree(segment_dir(store_path), segment_dir(own))

    source = open_lazy(own, cases=spec.cases)
    victim = sorted(segment_dir(own).iterdir())[0]
    victim.write_text(victim.read_text() + "\n")
    with pytest.raises(ClusterStoreError, match="changed on disk"):
        source.all_clusters()


# -- the service view -----------------------------------------------------------------


def test_service_reports_paging_growth(spec, corpus, store_path):
    service = RepairService(workers=1)
    service.add_problem(store_path)
    before = service.stats_snapshot()["problems"]["derivatives"]["store_paging"]
    assert before["segments_loaded"] == 0

    import asyncio

    line = json.dumps(
        {"op": "repair", "problem": "derivatives", "source": TWO_LOOP_BROKEN}
    )
    response = asyncio.run(service.handle_line(line))
    assert response["status"] == "repaired"
    after = service.stats_snapshot()["problems"]["derivatives"]["store_paging"]
    assert after["segments_loaded"] == 1
    assert after["segments_skipped"] == after["segments_total"] - 1
    service.close()
