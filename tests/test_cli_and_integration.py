"""CLI tests and cross-module integration tests."""

from __future__ import annotations

import pytest

from repro import Clara, InputCase, parse_source
from repro.cli import build_parser, main
from repro.core.inputs import is_correct


def test_cli_list_problems(capsys):
    assert main(["list-problems"]) == 0
    output = capsys.readouterr().out
    assert "derivatives" in output and "rhombus" in output


def test_cli_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("table1", "table2", "fig6", "repair", "batch", "list-problems"):
        assert command in text


def test_cli_repair_command(tmp_path, capsys):
    attempt = tmp_path / "attempt.py"
    attempt.write_text(
        "def computeDeriv(poly):\n"
        "    result = []\n"
        "    for e in range(len(poly)):\n"
        "        result.append(float(poly[e]*e))\n"
        "    if result == []:\n"
        "        return [0.0]\n"
        "    return result\n"
    )
    code = main(
        ["repair", "--problem", "derivatives", "--file", str(attempt), "--correct", "6"]
    )
    output = capsys.readouterr().out
    assert code == 0
    assert "status: repaired" in output
    assert "change" in output or "Add" in output


def test_cli_batch_command(tmp_path, capsys):
    import json

    broken = (
        "def computeDeriv(poly):\n"
        "    result = []\n"
        "    for e in range(len(poly)):\n"
        "        result.append(float(poly[e]*e))\n"
        "    if result == []:\n"
        "        return [0.0]\n"
        "    return result\n"
    )
    attempts = tmp_path / "attempts"
    attempts.mkdir()
    (attempts / "alice.py").write_text(broken)
    (attempts / "bob.py").write_text(broken)  # duplicate submission
    # A third duplicate guarantees a trace-cache hit even when the first two
    # race on the 2-worker pool and both miss concurrently.
    (attempts / "carol.py").write_text(broken)
    report_path = tmp_path / "report.jsonl"

    code = main(
        [
            "batch",
            "--problem",
            "derivatives",
            "--attempts",
            str(attempts),
            "--correct",
            "6",
            "--workers",
            "2",
            "--output",
            str(report_path),
        ]
    )
    assert code == 0
    lines = [json.loads(line) for line in report_path.read_text().splitlines()]
    assert len(lines) == 4  # three records + summary trailer
    assert [line["attempt_id"] for line in lines[:3]] == [
        "alice.py",
        "bob.py",
        "carol.py",
    ]
    assert all(line["status"] == "repaired" for line in lines[:3])
    summary = lines[3]["summary"]
    assert summary["attempts"] == 3
    assert summary["cache"]["trace_hits"] >= 1  # a duplicate hit the cache


def test_cli_batch_reads_jsonl(tmp_path, capsys):
    import json

    source = "def computeDeriv(poly):\n    return poly\n"
    attempts = tmp_path / "attempts.jsonl"
    attempts.write_text(json.dumps({"id": "s1", "source": source}) + "\n")
    code = main(
        ["batch", "--problem", "derivatives", "--attempts", str(attempts), "--correct", "4"]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    first = json.loads(stdout.splitlines()[0])
    assert first["attempt_id"] == "s1"


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


# -- integration: the library applied to a brand-new assignment ----------------------


def test_full_workflow_on_custom_problem():
    cases = [
        InputCase(args=(values,), expected_return=max(values) if values else 0)
        for values in ([], [3], [1, 5, 2], [7, 7], [2, 9, 4, 9])
    ]
    correct = [
        """
def largest(values):
    best = 0
    for v in values:
        if v > best:
            best = v
    return best
""",
        """
def largest(values):
    m = 0
    i = 0
    while i < len(values):
        if values[i] > m:
            m = values[i]
        i += 1
    return m
""",
    ]
    broken = """
def largest(values):
    best = 0
    for v in values:
        if v < best:
            best = v
    return best
"""
    clara = Clara(cases)
    clustering = clara.add_correct_sources(correct)
    assert clustering.cluster_count == clara.cluster_count >= 1
    outcome = clara.repair_source(broken)
    assert outcome.succeeded
    assert is_correct(outcome.repair.repaired_program, cases)
    assert outcome.feedback is not None and outcome.feedback.items


def test_python_and_c_models_are_interoperable():
    # The same assignment expressed in Python and C lowers to comparable
    # models: both read inputs, loop, and produce observable output/return.
    python_program = parse_source(
        "def f(n):\n    s = 0\n    for i in range(n):\n        s += i\n    return s\n"
    )
    c_program = parse_source(
        r"""
        int main() {
            int n, s = 0, i;
            scanf("%d", &n);
            for (i = 0; i < n; i++) { s = s + i; }
            printf("%d\n", s);
            return 0;
        }
        """,
        language="c",
    )
    assert len(python_program.locations) == len(c_program.locations) == 4
    assert python_program.language == "python" and c_program.language == "c"


def test_cli_batch_profile_writes_phase_breakdown(tmp_path, capsys, monkeypatch):
    import json

    broken = (
        "def computeDeriv(poly):\n"
        "    result = []\n"
        "    for e in range(len(poly)):\n"
        "        result.append(float(poly[e]*e))\n"
        "    if result == []:\n"
        "        return [0.0]\n"
        "    return result\n"
    )
    attempts = tmp_path / "attempts"
    attempts.mkdir()
    (attempts / "a.py").write_text(broken)
    report_path = tmp_path / "report.jsonl"
    monkeypatch.chdir(tmp_path)  # the profile lands in ./results/local/

    code = main(
        [
            "batch",
            "--problem",
            "derivatives",
            "--attempts",
            str(attempts),
            "--correct",
            "6",
            "--workers",
            "1",
            "--output",
            str(report_path),
            "--profile",
        ]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "profile" in err

    profile_path = tmp_path / "results" / "local" / "batch_profile.json"
    assert profile_path.exists()
    payload = json.loads(profile_path.read_text())
    counters = payload["phases"]["counters"]
    # Counter-only assertions (timings are machine-dependent): every phase
    # that must have run is counted.
    assert counters["parse"] == 1
    assert counters["exec"] >= 1
    assert counters["exec_steps"] >= 1
    assert counters["match"] >= 1
    assert counters["candidate_gen"] >= 1
    assert counters["ted"] >= 1
    assert counters["ilp"] >= 1
    # Timed phases are a subset of counted ones: counter-only entries
    # (exec_steps) carry no timing row.
    assert set(payload["phases"]["timings"]) <= set(counters)
    assert "exec_steps" not in payload["phases"]["timings"]
    assert payload["ted"]["dp_runs"] >= 0
    assert payload["ted"]["dp_runs"] + payload["ted"]["lb_prunes"] >= 1
    assert payload["compile"]["misses"] >= 1
    assert payload["attempts"] == 1

    # Profiling must not change outcomes.
    record = json.loads(report_path.read_text().splitlines()[0])
    assert record["status"] == "repaired"


def test_cli_batch_report_utf8_round_trips_non_ascii_sources(tmp_path):
    import json

    # Non-ASCII identifiers, comments and (on failure paths) detail strings
    # must survive attempt loading and report writing byte-exactly on any
    # locale — both sides are explicit UTF-8.
    source = (
        "def computeDeriv(poly):\n"
        "    # dérivée du polynôme — café ☕\n"
        "    rés = []\n"
        "    for i in range(1, len(poly)):\n"
        "        rés.append(float(i*poly[i]))\n"
        "    if rés == []:\n"
        "        return [0.0]\n"
        "    return rés\n"
    )
    attempts = tmp_path / "attempts.jsonl"
    attempts.write_text(
        json.dumps({"id": "élève-1", "source": source}, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )
    report_path = tmp_path / "rapport.jsonl"
    code = main(
        [
            "batch",
            "--problem",
            "derivatives",
            "--attempts",
            str(attempts),
            "--correct",
            "4",
            "--output",
            str(report_path),
        ]
    )
    assert code == 0
    # The report decodes as UTF-8 (an exception here is the regression this
    # test guards against) and the non-ASCII attempt id round-trips.
    lines = report_path.read_text(encoding="utf-8").splitlines()
    record = json.loads(lines[0])
    assert record["attempt_id"] == "élève-1"
    assert record["status"] in ("repaired", "already-correct")
