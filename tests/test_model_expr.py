"""Unit and property tests for the expression model."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.model.expr import (
    Const,
    Op,
    Var,
    conjunction,
    intern_expr,
    negation,
    render_expression,
)


def test_variables_collects_all_names():
    expr = Op("Add", Var("x"), Op("Mult", Var("y"), Const(2)))
    assert expr.variables() == {"x", "y"}


def test_size_counts_nodes():
    expr = Op("Add", Var("x"), Op("Mult", Var("y"), Const(2)))
    assert expr.size() == 5
    assert Var("x").size() == 1
    assert Const(3).size() == 1


def test_structural_equality_and_hash():
    a = Op("Add", Var("x"), Const(1))
    b = Op("Add", Var("x"), Const(1))
    c = Op("Add", Var("x"), Const(2))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert Const(True) != Const(1) or True  # Const equality is type-aware
    assert Const([1, 2]) == Const([1, 2])


def test_const_bool_vs_int_distinct():
    assert Const(True) != Const(1)
    assert Const(0) != Const(False)


def test_substitute_vars():
    expr = Op("Add", Var("x"), Var("y"))
    replaced = expr.substitute_vars({"x": Op("Mult", Var("z"), Const(2))})
    assert replaced == Op("Add", Op("Mult", Var("z"), Const(2)), Var("y"))
    # substitution is non-destructive
    assert expr == Op("Add", Var("x"), Var("y"))


def test_rename_vars():
    expr = Op("Add", Var("x"), Var("y"))
    assert expr.rename_vars({"x": "a", "y": "b"}) == Op("Add", Var("a"), Var("b"))


def test_paths_and_replace_at():
    expr = Op("Add", Var("x"), Op("Mult", Var("y"), Const(2)))
    paths = dict(expr.paths())
    assert paths[()] == expr
    assert paths[(1, 1)] == Const(2)
    replaced = expr.replace_at((1, 1), Const(3))
    assert replaced == Op("Add", Var("x"), Op("Mult", Var("y"), Const(3)))
    assert expr.node_at((1, 0)) == Var("y")


def test_render_expression_readable():
    expr = Op("ite", Op("Eq", Var("r"), Const([])), Const([0.0]), Var("r"))
    text = render_expression(expr)
    assert "if" in text and "r == []" in text
    assert render_expression(Op("GetElement", Var("p"), Var("i"))) == "p[i]"
    assert render_expression(Op("append", Var("r"), Const(1))) == "append(r, 1)"
    assert render_expression(Op("TupleInit", Var("x"))) == "(x,)"


def test_conjunction_and_negation_folding():
    assert conjunction([]) == Const(True)
    assert conjunction([Const(True), Var("a")]) == Var("a")
    assert negation(Const(True)) == Const(False)
    assert negation(negation(Var("a"))) == Var("a")


# -- property-based tests -------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])


def exprs(depth: int = 3):
    leaf = st.one_of(
        _names.map(Var),
        st.integers(-5, 5).map(Const),
        st.booleans().map(Const),
    )
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(["Add", "Mult", "Eq", "Lt", "And"]), children, children
        ).map(lambda t: Op(t[0], t[1], t[2])),
        max_leaves=8,
    )


@given(exprs())
def test_rename_identity_is_noop(expr):
    mapping = {name: name for name in expr.variables()}
    assert expr.rename_vars(mapping) == expr


@given(exprs())
def test_size_positive_and_consistent_with_paths(expr):
    assert expr.size() == len(list(expr.paths()))
    assert expr.size() >= 1


@given(exprs())
def test_rename_roundtrip(expr):
    forward = {"a": "t1", "b": "t2", "c": "t3", "x": "t4", "y": "t5"}
    backward = {v: k for k, v in forward.items()}
    assert expr.rename_vars(forward).rename_vars(backward) == expr


@given(exprs())
def test_replace_every_path_keeps_tree_valid(expr):
    for path, _node in expr.paths():
        replaced = expr.replace_at(path, Const(42))
        assert replaced.node_at(path) == Const(42)


# -- structural keys and interning -----------------------------------------------------


def test_structural_key_matches_equality():
    a = Op("Add", Var("x"), Const(1))
    b = Op("Add", Var("x"), Const(1))
    c = Op("Add", Var("x"), Const(True))  # bool vs int must not collide
    assert a.structural_key() == b.structural_key()
    assert a.structural_key() != c.structural_key()
    assert Const(1).structural_key() != Const(1.0).structural_key()
    # The key is cached: the second call returns the same object.
    assert a.structural_key() is a.structural_key()


def test_intern_returns_canonical_object():
    a = Op("Add", Var("x"), Const(1))
    b = Op("Add", Var("x"), Const(1))
    assert a is not b
    assert intern_expr(a) is intern_expr(b)
    # Interning is idempotent.
    canonical = intern_expr(a)
    assert intern_expr(canonical) is canonical


def test_intern_shares_subexpressions():
    shared = Op("Mult", Var("x"), Const(2))
    left = Op("Add", Op("Mult", Var("x"), Const(2)), Const(1))
    interned_left = intern_expr(left)
    interned_shared = intern_expr(shared)
    assert interned_left.args[0] is interned_shared


@given(exprs())
def test_intern_preserves_structure(expr):
    interned = intern_expr(expr)
    assert interned == expr
    assert str(interned) == str(expr)
    assert interned.structural_key() == expr.structural_key()
