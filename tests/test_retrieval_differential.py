"""Differential property harness for the nearest-cluster retrieval prefilter.

The prefilter's contract (``repro.retrieval``): feature vectors only
*order* candidate clusters and *cut* provably-unmatchable ones — the
exact procedures (dynamic matching at build time, Def. 4.1 structural
matching at repair time) still decide everything.  These tests hold the
implementation to that contract:

* seeded random corpora, prefilter on vs off: clusterings, repair
  outcomes, feedback text and cluster assignments are field-identical;
* an adversarial store whose persisted vectors rank the true match
  *last*: the top-k cut alone would miss it, so the test fails if the
  exact-fallback ladder behind the cut is ever broken;
* feature vectors are byte-stable across ``PYTHONHASHSEED`` values and
  construction order, so persisted headers stay reproducible.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import pytest

from helpers.differential import assert_outcomes_field_identical, outcome_fields

from repro import Clara
from repro.clusterstore import open_lazy
from repro.core.clustering import cluster_programs
from repro.datasets import generate_corpus, get_problem
from repro.frontend import parse_python_source
from repro.retrieval import (
    feature_vector,
    ranked_candidates,
    retrieval_payload,
    squared_distance,
)

#: Correct solution with a CFG skeleton the generated derivatives pool
#: never produces (two sequential loops) — and a broken attempt of the
#: same shape that only its cluster can repair.
TWO_LOOP = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(i*poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)

TWO_LOOP_BROKEN = (
    "def computeDeriv(poly):\n"
    "    new = []\n"
    "    for i in range(len(poly)):\n"
    "        new.append(float(poly[i]))\n"
    "    result = []\n"
    "    for j in range(1, len(new)):\n"
    "        result.append(new[j])\n"
    "    if result == []:\n"
    "        return [0.0]\n"
    "    return result\n"
)


def _clara(spec, **kwargs):
    return Clara(cases=spec.cases, language=spec.language, entry=spec.entry, **kwargs)


# -- ranking is a permutation (the exact-fallback ladder exists) ----------------------


def test_ranked_candidates_is_a_permutation_with_nearest_head():
    query = (3, 0, 0)
    candidates = ["far", "near", "mid", "exact"]
    vectors = {"far": (9, 9, 9), "near": (3, 0, 1), "mid": (5, 0, 0), "exact": (3, 0, 0)}
    order = ranked_candidates(query, candidates, vectors.__getitem__, top_k=2)
    assert order[:2] == ["exact", "near"]
    # The tail keeps every remaining candidate in original order: a true
    # match ranked past the cut is still reachable by the exact ladder.
    assert order[2:] == ["far", "mid"]
    assert sorted(order) == sorted(candidates)


def test_squared_distance_counts_excess_coordinates():
    assert squared_distance((1, 2), (1, 2)) == 0
    assert squared_distance((1, 2), (2, 4)) == 5
    assert squared_distance((1, 2, 3), (1, 2)) == 9  # length mismatch penalised


# -- seeded corpora: prefilter on vs off is field-identical ---------------------------


@pytest.mark.parametrize(
    "problem_name,correct,incorrect,seed",
    [("derivatives", 8, 6, 11), ("derivatives", 10, 4, 3), ("oddTuples", 8, 5, 21)],
)
def test_pipeline_field_identical_prefilter_on_vs_off(
    problem_name, correct, incorrect, seed
):
    """Full pipeline over a seeded corpus: same clustering signature, same
    repair outcomes (status, repair fields incl. cluster assignment,
    feedback text) with the prefilter on and off."""
    spec = get_problem(problem_name)
    corpus = generate_corpus(spec, correct, incorrect, seed=seed)
    signatures, outcomes = [], []
    for prefilter in (False, True):
        clara = _clara(spec, retrieval_prefilter=prefilter)
        result = clara.add_correct_sources(corpus.correct_sources)
        signatures.append(result.signature())
        outcomes.append([clara.repair_source(s) for s in corpus.incorrect_sources])
        counters = clara.caches.retrieval.as_dict()
        if prefilter:
            assert counters["candidates_ranked"] > 0
        else:
            assert counters == {
                "candidates_ranked": 0,
                "matches_attempted": 0,
                "matches_skipped": 0,
                "fallbacks": 0,
            }
    off, on = outcomes
    assert signatures[0] == signatures[1]
    assert_outcomes_field_identical(on, off)


def test_build_time_clustering_identical_prefilter_on_vs_off():
    """cluster_programs with ranked placement produces the identical
    clustering (ids, sizes, pools) as the exhaustive scan — ∼_I classes
    are disjoint, so probe order cannot change the fixpoint."""
    spec = get_problem("derivatives")
    corpus = generate_corpus(spec, 12, 0, seed=29)
    programs = [parse_python_source(s) for s in list(corpus.correct_sources) + [TWO_LOOP]]
    exhaustive = cluster_programs(programs, spec.cases, prefilter=False)
    reparsed = [parse_python_source(s) for s in list(corpus.correct_sources) + [TWO_LOOP]]
    ranked = cluster_programs(reparsed, spec.cases, prefilter=True)
    assert ranked.signature() == exhaustive.signature()
    assert ranked.failures == exhaustive.failures


# -- adversarial: the top-k cut must never decide -------------------------------------


def test_adversarial_ranking_recovered_by_exact_fallback(tmp_path):
    """A store whose persisted vectors rank the true cluster *last* (and a
    header with no skeleton digests, so nothing is pre-cut): with
    ``top_k=1`` the cut's head holds only wrong-shape clusters, and the
    repair survives purely because the exact ladder walks the tail.  The
    outcome must be field-identical to the prefilter-off run and the
    ``fallbacks`` counter must record the late match."""
    spec = get_problem("derivatives")
    corpus = generate_corpus(spec, 10, 4, seed=3)
    path = tmp_path / "derivatives.json"
    builder = _clara(spec)
    builder.add_correct_sources(list(corpus.correct_sources) + [TWO_LOOP])
    builder.save_clusters(path, problem="derivatives")

    baseline_clara = _clara(spec, retrieval_prefilter=False)
    baseline_clara.attach_lazy_clusters(open_lazy(path, cases=spec.cases))
    baseline = baseline_clara.repair_source(TWO_LOOP_BROKEN)
    assert baseline.status == "repaired"
    true_id = baseline.repair.cluster_id

    query_vector = list(feature_vector(parse_python_source(TWO_LOOP_BROKEN)))
    header = json.loads(path.read_text())
    for entry in header["segments"]:
        # "Unknown skeleton, always page in": every cluster becomes a
        # repair candidate, so the gate really probes wrong shapes.
        entry["skeleton"] = None
        vectors = entry["retrieval"]["vectors"]
        for cluster_id in vectors:
            if int(cluster_id) == true_id:
                # Push the true match far away: with top_k=1 it can only
                # be reached through the exact-fallback tail.
                vectors[cluster_id] = [value + 1000 for value in vectors[cluster_id]]
            else:
                vectors[cluster_id] = list(query_vector)
    path.write_text(json.dumps(header, indent=2, sort_keys=True) + "\n")

    adversarial_clara = _clara(spec, retrieval_top_k=1)
    adversarial_clara.attach_lazy_clusters(open_lazy(path, cases=spec.cases))
    adversarial = adversarial_clara.repair_source(TWO_LOOP_BROKEN)

    assert outcome_fields(adversarial) == outcome_fields(baseline)
    counters = adversarial_clara.caches.retrieval.as_dict()
    # The gate probed (and rejected) wrong-shape clusters before reaching
    # the true one beyond the cut — the definition of a fallback.
    assert counters["matches_attempted"] > 1
    assert counters["fallbacks"] >= 1
    assert counters["candidates_ranked"] >= counters["matches_attempted"]


# -- determinism: vectors must not depend on hash salt or construction order ----------


def _corpus_vector_digest() -> str:
    spec = get_problem("derivatives")
    corpus = generate_corpus(spec, 6, 0, seed=17)
    programs = [parse_python_source(s) for s in list(corpus.correct_sources) + [TWO_LOOP]]
    vectors = [list(feature_vector(p)) for p in programs]
    clusters = cluster_programs(programs, spec.cases).clusters
    payload = retrieval_payload(clusters)
    blob = json.dumps({"vectors": vectors, "payload": payload}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def test_feature_vectors_stable_across_hash_seeds():
    """Vectors and the persisted payload must not depend on the per-process
    string-hash salt — salted values would make every committed store
    header and results/ artifact irreproducible."""
    script = (
        "from test_retrieval_differential import _corpus_vector_digest\n"
        "print(_corpus_vector_digest())\n"
    )
    digests = {_corpus_vector_digest()}
    for hash_seed in ("1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
            cwd=os.path.dirname(__file__),
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1, "feature vectors vary with the process hash salt"


def test_feature_vectors_independent_of_construction_order():
    spec = get_problem("derivatives")
    corpus = generate_corpus(spec, 8, 0, seed=23)
    sources = list(corpus.correct_sources) + [TWO_LOOP]
    forward = {s: feature_vector(parse_python_source(s)) for s in sources}
    backward = {s: feature_vector(parse_python_source(s)) for s in reversed(sources)}
    assert forward == backward
    programs = [parse_python_source(s) for s in sources]
    clusters = cluster_programs(programs, spec.cases).clusters
    # The payload is a pure function of cluster contents: re-deriving it,
    # in any cluster order, yields the same centroid and vector map.
    assert retrieval_payload(clusters) == retrieval_payload(list(reversed(clusters)))
