"""The documentation link checker: the repo's own docs must pass, and the
checker itself must actually catch dead links (no vacuous green)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"

sys.path.insert(0, str(CHECKER.parent))

from check_links import check_file, iter_links  # noqa: E402


def test_repository_docs_have_no_dead_links():
    result = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert result.returncode == 0, result.stderr


def test_checker_flags_a_dead_relative_link(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("see [the spec](missing/STORAGE.md) for details\n")
    assert check_file(page) == ["missing/STORAGE.md"]


def test_checker_resolves_links_relative_to_the_referencing_file(tmp_path):
    (tmp_path / "other.md").write_text("hello\n")
    page = tmp_path / "page.md"
    page.write_text("[other](other.md) and [anchored](other.md#section)\n")
    assert check_file(page) == []


def test_checker_skips_external_anchors_and_code_fences(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "[web](https://example.com) [mail](mailto:a@b.c) [here](#top)\n"
        "```\n"
        "a shell [snippet](not-a-file) inside a fence\n"
        "```\n"
    )
    assert list(iter_links(page.read_text())) == [
        "https://example.com",
        "mailto:a@b.c",
        "#top",
    ]
    assert check_file(page) == []
