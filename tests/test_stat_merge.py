"""Unit tests for the counter-snapshot algebra (merge / diff / from_dict).

The process-parallel batch engine folds per-worker counter payloads into
one report by commutative sum; these tests pin the algebraic laws that
merge correctness rests on — commutativity, a fresh instance as the
identity, diff as merge's inverse, and from_dict/as_dict round-tripping —
for all three mergeable snapshot types: :class:`PhaseProfiler`,
:class:`CacheStats` and :class:`RetrievalStats`.
"""

from __future__ import annotations

from repro.core.profile import PhaseProfiler
from repro.engine.cache import CacheStats
from repro.retrieval.index import RetrievalStats


# -- PhaseProfiler -------------------------------------------------------------------


def _profiler(**phases: int) -> PhaseProfiler:
    profiler = PhaseProfiler()
    for phase, calls in phases.items():
        profiler.add(phase, seconds=0.25 * calls, calls=calls)
    return profiler


def test_profiler_merge_sums_counters_and_timings():
    a = _profiler(parse=2, exec=5)
    b = _profiler(exec=3, ilp=1)
    merged = a.merge(b)
    assert merged.counters() == {"parse": 2, "exec": 8, "ilp": 1}
    assert merged.timings() == {"parse": 0.5, "exec": 2.0, "ilp": 0.25}
    # Neither operand is mutated.
    assert a.counters() == {"parse": 2, "exec": 5}
    assert b.counters() == {"exec": 3, "ilp": 1}


def test_profiler_merge_is_commutative_with_empty_identity():
    a = _profiler(parse=2, ted=7)
    b = _profiler(ted=1, match=4)
    assert a.merge(b).as_dict() == b.merge(a).as_dict()
    assert a.merge(PhaseProfiler()).as_dict() == a.as_dict()
    assert PhaseProfiler().merge(a).as_dict() == a.as_dict()


def test_profiler_diff_inverts_merge():
    a = _profiler(parse=2, exec=5)
    b = _profiler(exec=3, ilp=1)  # ilp is a phase only b knows
    assert a.merge(b).diff(b).as_dict() == a.as_dict()


def test_profiler_diff_keeps_negative_residue_visible():
    a = _profiler(exec=1)
    b = _profiler(exec=3)
    assert a.diff(b).counters() == {"exec": -2}


def test_profiler_counter_only_phases_survive_the_round_trip():
    profiler = PhaseProfiler()
    profiler.add("exec", seconds=0.5, calls=2)
    profiler.count("exec_steps", 40)  # counted, never timed
    rebuilt = PhaseProfiler.from_dict(profiler.as_dict())
    assert rebuilt.as_dict() == profiler.as_dict()
    assert "exec_steps" not in rebuilt.timings()


def test_profiler_from_dict_tolerates_missing_sections():
    assert PhaseProfiler.from_dict({}).as_dict() == {"counters": {}, "timings": {}}


# -- CacheStats ----------------------------------------------------------------------


def test_cache_stats_merge_and_diff_are_fieldwise():
    a = CacheStats(trace_hits=3, trace_misses=1, match_hits=5, repair_misses=2)
    b = CacheStats(trace_hits=1, match_misses=4, repair_hits=6, repair_misses=1)
    merged = a.merge(b)
    # as_dict also carries derived hit rates; comparing whole dicts checks
    # those recompute consistently from the summed counters.
    assert merged.as_dict() == CacheStats(
        trace_hits=4,
        trace_misses=1,
        match_hits=5,
        match_misses=4,
        repair_hits=6,
        repair_misses=3,
    ).as_dict()
    assert merged.diff(b).as_dict() == a.as_dict()
    assert a.merge(b).as_dict() == b.merge(a).as_dict()
    assert a.merge(CacheStats()).as_dict() == a.as_dict()


def test_cache_stats_from_dict_round_trips():
    stats = CacheStats(trace_hits=7, match_misses=2, repair_hits=1)
    assert CacheStats.from_dict(stats.as_dict()).as_dict() == stats.as_dict()
    assert CacheStats.from_dict({}).as_dict() == CacheStats().as_dict()


# -- RetrievalStats ------------------------------------------------------------------


def test_retrieval_stats_merge_and_diff_are_fieldwise():
    a = RetrievalStats(candidates_ranked=10, matches_attempted=4, fallbacks=1)
    b = RetrievalStats(candidates_ranked=5, matches_skipped=6)
    merged = a.merge(b)
    assert merged.as_dict() == {
        "candidates_ranked": 15,
        "matches_attempted": 4,
        "matches_skipped": 6,
        "fallbacks": 1,
    }
    assert merged.diff(b).as_dict() == a.as_dict()
    assert a.merge(b).as_dict() == b.merge(a).as_dict()
    assert a.merge(RetrievalStats()).as_dict() == a.as_dict()


def test_retrieval_stats_from_dict_round_trips():
    stats = RetrievalStats(matches_attempted=9, fallbacks=2)
    assert RetrievalStats.from_dict(stats.as_dict()).as_dict() == stats.as_dict()
    assert RetrievalStats.from_dict({}).as_dict() == RetrievalStats().as_dict()


def test_snapshots_are_independent_copies():
    stats = RetrievalStats(candidates_ranked=1)
    frozen = stats.snapshot()
    stats.record(ranked=5)
    assert frozen.candidates_ranked == 1
    assert stats.candidates_ranked == 6
