"""Tests for the AutoGrader-style baseline."""

from __future__ import annotations

from repro.baseline import AutoGrader, applicable_rewrites, default_error_model
from repro.core.inputs import is_correct
from repro.frontend import parse_python_source
from repro.model.expr import Const, Op, Var


def test_error_model_rules_present():
    rules = default_error_model()
    names = {rule.name for rule in rules}
    assert {"integer-constants", "comparison-operators", "range-bounds"} <= names


def test_applicable_rewrites_enumerates_sites():
    expr = Op("range", Op("len", Var("poly")))
    rewrites = applicable_rewrites(expr, default_error_model(), ["poly", "result"])
    replacements = {str(replacement) for _path, replacement, _rule in rewrites}
    assert "range(1, len(poly))" in replacements  # the fix AutoGrader can express
    assert any(rule == "variable-substitution" for _p, _r, rule in rewrites)


def test_constant_rule_offers_off_by_one():
    rewrites = applicable_rewrites(Const(5), default_error_model(), [])
    values = {
        r.value
        for _p, r, _n in rewrites
        if isinstance(r, Const) and isinstance(r.value, int)
    }
    assert {4, 6, 0, 1} <= values


def test_autograder_repairs_off_by_one_range(paper_sources, deriv_cases):
    grader = AutoGrader(cases=deriv_cases)
    broken = paper_sources["C1"].replace("range(1, len(poly))", "range(2, len(poly))")
    program = parse_python_source(broken)
    assert not is_correct(program, deriv_cases)
    repair = grader.repair(program)
    assert repair is not None
    assert repair.cost == 1
    assert repair.num_modified_expressions == 1
    assert is_correct(repair.repaired_program, deriv_cases)
    assert repair.tree_edit_cost() >= 1


def test_autograder_repairs_wrong_comparison(deriv_cases, paper_sources):
    grader = AutoGrader(cases=deriv_cases)
    broken = paper_sources["C2"].replace("len(deriv) == 0", "len(deriv) != 0")
    program = parse_python_source(broken)
    repair = grader.repair(program)
    assert repair is not None
    assert is_correct(repair.repaired_program, deriv_cases)


def test_autograder_cannot_add_fresh_variables(deriv_cases):
    # The "big conceptual error" of Fig. 8: the repair needs a fresh variable
    # and new statements, which the error model cannot express.
    missing_accumulator = """
def computeDeriv(poly):
    for e in range(1, len(poly)):
        x = float(poly[e]*e)
    if poly == []:
        return [0.0]
    else:
        return poly
"""
    grader = AutoGrader(cases=deriv_cases, max_candidates=3000)
    repair = grader.repair(parse_python_source(missing_accumulator))
    assert repair is None


def test_autograder_gives_up_on_correct_programs_quickly(paper_sources, deriv_cases):
    # A correct program is never "repaired" with zero edits (the search starts
    # at one edit); it simply finds some one-edit variant that still passes or
    # nothing at all -- either way it must terminate within its budget.
    grader = AutoGrader(cases=deriv_cases, max_candidates=500)
    program = parse_python_source(paper_sources["C1"])
    grader.repair(program)  # must not hang or raise
